package lsm

import (
	"fmt"
	"testing"

	"znscache/internal/hdd"
)

func TestBloomSkipsAbsentKeyLookups(t *testing.T) {
	// Point lookups of absent keys must almost never touch the disk: the
	// per-table Bloom filters reject them.
	db := testDB(t, func(c *Config) { c.StoreValues = false })
	for i := 0; i < 5000; i++ {
		db.Put(fmt.Sprintf("key-%06d", i), nil, 64)
	}
	db.Flush()
	db.DiskReads.Reset()
	const absents = 2000
	for i := 0; i < absents; i++ {
		if _, ok, _ := db.Get(fmt.Sprintf("absent-%06d", i)); ok {
			t.Fatal("absent key found")
		}
	}
	// ~1% FPR per table; allow 5% across a handful of tables.
	if reads := db.DiskReads.Load(); reads > absents/10 {
		t.Fatalf("absent-key lookups caused %d disk reads; bloom filters ineffective", reads)
	}
}

func TestWALRingWraps(t *testing.T) {
	// Push far more WAL bytes than the ring holds; writes must keep landing
	// inside [0, walRing) instead of running off the disk.
	disk := hdd.New(hdd.Config{Capacity: 1 << 30})
	db, err := Open(Config{
		Disk:          disk,
		MemtableBytes: 1 << 40, // never flush: pure WAL traffic
		// Tiny group-commit buffer so every put writes the device.
		WALBufferBytes: 4096,
	})
	if err != nil {
		t.Fatal(err)
	}
	// walRing/4096 puts of ~4KiB WAL each would fill the ring once; go 2x.
	const n = 3000
	for i := 0; i < n; i++ {
		if err := db.Put(fmt.Sprintf("key-%06d", i), nil, 8<<10); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	if db.walOff < 0 || db.walOff > walRing {
		t.Fatalf("wal cursor %d escaped the ring", db.walOff)
	}
	if disk.Writes.Load() == 0 {
		t.Fatal("no WAL device writes")
	}
}

func TestTombstonesDroppedAtBottomLevel(t *testing.T) {
	db := testDB(t, func(c *Config) { c.MemtableBytes = 2 << 10 })
	db.Put("doomed", []byte("x"), 0)
	db.Delete("doomed")
	// Force compaction all the way down by pushing volume through.
	for i := 0; i < 4000; i++ {
		db.Put(fmt.Sprintf("key-%06d", i), nil, 64)
	}
	db.Flush()
	if _, ok, _ := db.Get("doomed"); ok {
		t.Fatal("deleted key resurrected")
	}
	// The tombstone must not survive once its range reaches the last level
	// with data. (Indirect check: a full iterator scan never yields it.)
	it := db.NewIterator("doomed", "doomee")
	for it.Next() {
		if it.Key() == "doomed" {
			t.Fatal("tombstoned key visible in scan")
		}
	}
}

func TestGetLatHistogramPopulated(t *testing.T) {
	db := testDB(t)
	db.Put("k", []byte("v"), 0)
	db.Get("k")
	db.Get("missing")
	if db.GetLat.Count() != 2 {
		t.Fatalf("GetLat count = %d, want 2", db.GetLat.Count())
	}
	if db.PutLat.Count() != 1 {
		t.Fatalf("PutLat count = %d, want 1", db.PutLat.Count())
	}
}

func TestTableCountAndSizes(t *testing.T) {
	db := testDB(t)
	for i := 0; i < 2000; i++ {
		db.Put(fmt.Sprintf("key-%06d", i), nil, 64)
	}
	db.Flush()
	total := 0
	for lvl := 0; lvl < numLevels; lvl++ {
		for _, tab := range db.levels[lvl] {
			total++
			if tab.Size() <= 0 {
				t.Fatalf("level %d table with non-positive size", lvl)
			}
			if tab.Smallest() > tab.Largest() {
				t.Fatalf("level %d table with inverted range", lvl)
			}
		}
	}
	if total == 0 {
		t.Fatal("no tables after flush")
	}
}

func TestSecondaryDisabledNeverConsulted(t *testing.T) {
	db := testDB(t, func(c *Config) { c.StoreValues = false })
	for i := 0; i < 2000; i++ {
		db.Put(fmt.Sprintf("key-%06d", i), nil, 64)
	}
	db.Flush()
	for i := 0; i < 500; i++ {
		db.Get(fmt.Sprintf("key-%06d", i*3))
	}
	if db.SecondaryHits.Load() != 0 {
		t.Fatal("null secondary cache reported hits")
	}
	if db.SecondaryHitRatio() != 0 {
		t.Fatal("hit ratio nonzero with null secondary")
	}
}
