package lsm

import (
	"container/heap"
	"sort"
	"time"

	"znscache/internal/device"
)

// Iterator merges the memtable and every level into one ordered scan over
// [start, end) — RocksDB's NewIterator for the forward case. Newest data
// wins key conflicts and tombstones suppress older versions. Block I/O is
// charged to the shared virtual clock as the scan crosses block
// boundaries, sequential within a table (the HDD model rewards that).
type Iterator struct {
	db    *DB
	end   string
	h     srcHeap
	key   string
	vlen  int
	value []byte
	valid bool
	err   error
}

// source is one sorted input: the memtable snapshot or one table.
type source struct {
	prio    int // higher wins key ties (newer data)
	keys    []string
	vals    [][]byte
	vlens   []int
	tombs   []bool
	idx     int
	t       *Table // nil for the memtable
	blockAt int    // last block index charged to the clock
}

func (s *source) exhausted() bool { return s.idx >= len(s.keys) }
func (s *source) key() string     { return s.keys[s.idx] }

type srcHeap []*source

func (h srcHeap) Len() int { return len(h) }
func (h srcHeap) Less(i, j int) bool {
	if h[i].key() != h[j].key() {
		return h[i].key() < h[j].key()
	}
	return h[i].prio > h[j].prio // newer first among equal keys
}
func (h srcHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *srcHeap) Push(x interface{}) { *h = append(*h, x.(*source)) }
func (h *srcHeap) Pop() interface{} {
	old := *h
	n := len(old)
	s := old[n-1]
	*h = old[:n-1]
	return s
}

// NewIterator opens a merged scan over [start, end). Empty end means
// unbounded. The iterator sees a snapshot of the current memtable and
// table set; concurrent writes after creation are not reflected.
func (db *DB) NewIterator(start, end string) *Iterator {
	it := &Iterator{db: db, end: end}

	// Memtable snapshot (highest priority).
	mem := &source{prio: 1 << 30}
	keys := make([]string, 0, len(db.mem))
	for k := range db.mem {
		if k >= start && (end == "" || k < end) {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	for _, k := range keys {
		e := db.mem[k]
		mem.keys = append(mem.keys, k)
		mem.vals = append(mem.vals, e.val)
		mem.vlens = append(mem.vlens, e.vlen)
		mem.tombs = append(mem.tombs, e.tomb)
	}
	if !mem.exhausted() {
		it.h = append(it.h, mem)
	}

	// Tables: L0 newest has highest priority; deeper levels lower.
	prio := 1 << 29
	for i := len(db.levels[0]) - 1; i >= 0; i-- {
		it.addTable(db.levels[0][i], start, end, prio)
		prio--
	}
	for lvl := 1; lvl < numLevels; lvl++ {
		for _, t := range db.levels[lvl] {
			it.addTable(t, start, end, prio)
		}
		prio--
	}
	heap.Init(&it.h)
	return it
}

// addTable loads the in-range portion of a table as a source.
func (it *Iterator) addTable(t *Table, start, end string, prio int) {
	if end != "" && t.smallest >= end {
		return
	}
	if t.largest < start {
		return
	}
	src := &source{prio: prio, t: t, blockAt: -1}
	firstBlock := 0
	if start != "" {
		if b := t.blockFor(start); b > 0 {
			firstBlock = b
		}
	}
	for bi := firstBlock; bi < len(t.blocks); bi++ {
		b := t.blocks[bi]
		for i := 0; i < b.n(); i++ {
			k := b.key(i)
			if k < start {
				continue
			}
			if end != "" && k >= end {
				break
			}
			v, vlen, tomb := b.val(i)
			src.keys = append(src.keys, k)
			src.vals = append(src.vals, v)
			src.vlens = append(src.vlens, vlen)
			src.tombs = append(src.tombs, tomb)
		}
	}
	if !src.exhausted() {
		it.h = append(it.h, src)
	}
}

// chargeIO accounts a sequential block read when the scan enters a new
// block of a table-backed source.
func (it *Iterator) chargeIO(s *source) {
	if s.t == nil {
		return
	}
	// Approximate the block index from the entry position.
	entriesPerBlock := 1
	if len(s.t.blocks) > 0 && s.t.blocks[0].n() > 0 {
		entriesPerBlock = s.t.blocks[0].n()
	}
	block := s.idx / entriesPerBlock
	if block == s.blockAt {
		return
	}
	s.blockAt = block
	off := s.t.diskOff + int64(block)*BlockSize
	lat, err := it.db.cfg.Disk.ReadAt(it.db.clock.Now(), make([]byte, device.SectorSize), off)
	if err == nil {
		it.db.clock.Advance(lat)
	}
	it.db.DiskReads.Inc()
}

// Next advances to the next live key; it returns false at the end.
func (it *Iterator) Next() bool {
	it.valid = false
	for it.h.Len() > 0 {
		top := it.h[0]
		key := top.key()
		tomb := top.tombs[top.idx]
		val := top.vals[top.idx]
		vlen := top.vlens[top.idx]
		it.chargeIO(top)
		// Advance every source positioned at this key (older versions are
		// shadowed).
		for it.h.Len() > 0 && it.h[0].key() == key {
			s := it.h[0]
			s.idx++
			if s.exhausted() {
				heap.Pop(&it.h)
			} else {
				heap.Fix(&it.h, 0)
			}
		}
		if tomb {
			continue
		}
		it.key = key
		it.value = val
		it.vlen = vlen
		it.valid = true
		it.db.clock.Advance(200 * time.Nanosecond) // per-entry CPU
		return true
	}
	return false
}

// Key returns the current key; valid only after Next returned true.
func (it *Iterator) Key() string { return it.key }

// Value returns the current value bytes (nil when the DB does not store
// values).
func (it *Iterator) Value() []byte { return it.value }

// ValueLen returns the current value's logical length.
func (it *Iterator) ValueLen() int { return it.vlen }

// Valid reports whether the iterator is positioned on an entry.
func (it *Iterator) Valid() bool { return it.valid }

// Err returns the first error encountered (currently always nil; kept for
// API compatibility with real iterators).
func (it *Iterator) Err() error { return it.err }
