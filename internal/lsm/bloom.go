package lsm

import "hash/fnv"

// bloom is a fixed-size Bloom filter with k=4 derived hash probes, built
// once per SSTable over its keys. RocksDB relies on per-table filters to
// skip tables without touching the disk; without them every point lookup
// would pay one block read per overlapping table.
type bloom struct {
	bits  []uint64
	nbits uint64
}

// bloomBitsPerKey matches RocksDB's default of 10 bits/key (~1% FPR).
const bloomBitsPerKey = 10

func newBloom(expectedKeys int) *bloom {
	if expectedKeys < 1 {
		expectedKeys = 1
	}
	words := (expectedKeys*bloomBitsPerKey + 63) / 64
	return &bloom{bits: make([]uint64, words), nbits: uint64(words) * 64}
}

func (b *bloom) probes(key string) [4]uint64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	h1 := h.Sum64()
	h2 := h1>>29 | h1<<35
	var p [4]uint64
	for i := range p {
		p[i] = (h1 + uint64(i)*h2) % b.nbits
	}
	return p
}

func (b *bloom) add(key string) {
	for _, p := range b.probes(key) {
		b.bits[p/64] |= 1 << (p % 64)
	}
}

func (b *bloom) mayContain(key string) bool {
	for _, p := range b.probes(key) {
		if b.bits[p/64]&(1<<(p%64)) == 0 {
			return false
		}
	}
	return true
}

// sizeBytes reports the filter's memory footprint (stats only).
func (b *bloom) sizeBytes() int { return len(b.bits) * 8 }
