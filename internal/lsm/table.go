package lsm

import (
	"sort"
)

// BlockSize is the SSTable data-block size, matching the 4 KiB block the
// secondary cache stores and the paper's 4 KiB I/O unit.
const BlockSize = 4096

// kv is one key/value pair moving through flush and compaction.
type kv struct {
	key  string
	val  []byte // nil when values are not retained
	vlen int
	tomb bool // deletion marker
}

// block is one data block: sorted entries in packed form. Key bytes are
// always retained (lookups need them); value bytes only when the DB is
// configured to store values.
type block struct {
	kbuf  []byte
	koffs []uint32 // len n+1
	vbuf  []byte
	voffs []uint32 // len n+1 when values stored
	vlens []uint32 // value lengths (always, for sizing)
	tombs []bool
}

func (b *block) n() int { return len(b.koffs) - 1 }

func (b *block) key(i int) string {
	return string(b.kbuf[b.koffs[i]:b.koffs[i+1]])
}

// find returns the entry index of key, or -1.
func (b *block) find(key string) int {
	lo, hi := 0, b.n()
	for lo < hi {
		mid := (lo + hi) / 2
		if b.key(mid) < key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < b.n() && b.key(lo) == key {
		return lo
	}
	return -1
}

// val returns the value bytes (nil if not retained), its length, and the
// tombstone flag.
func (b *block) val(i int) ([]byte, int, bool) {
	var v []byte
	if b.vbuf != nil {
		v = b.vbuf[b.voffs[i]:b.voffs[i+1]]
	}
	return v, int(b.vlens[i]), b.tombs[i]
}

// storedBytes approximates the on-disk size of the block: keys + values +
// per-entry framing. Used to charge device I/O.
func (b *block) storedBytes() int {
	n := b.n()
	sz := len(b.kbuf) + 8*n
	for _, l := range b.vlens {
		sz += int(l)
	}
	return sz
}

// Table is one immutable SSTable. Block payloads are kept in memory (they
// are the simulation's ground truth); the disk offset locates the bytes on
// the simulated HDD so reads charge realistic seek/transfer latency.
type Table struct {
	id       int64
	level    int
	smallest string
	largest  string
	blocks   []*block
	firstKey []string // block index: first key of each block (pinned in RAM,
	// mirroring the paper's "index block caching enabled")
	filter  *bloom
	diskOff int64 // where the table body starts on the backing disk
	size    int64 // on-disk bytes
}

// Smallest returns the table's smallest key.
func (t *Table) Smallest() string { return t.smallest }

// Largest returns the table's largest key.
func (t *Table) Largest() string { return t.largest }

// Size returns the table's on-disk footprint.
func (t *Table) Size() int64 { return t.size }

// covers reports whether key falls in the table's range.
func (t *Table) covers(key string) bool {
	return key >= t.smallest && key <= t.largest
}

// blockFor returns the index of the block that may contain key.
func (t *Table) blockFor(key string) int {
	// Last block whose firstKey <= key.
	i := sort.SearchStrings(t.firstKey, key)
	if i < len(t.firstKey) && t.firstKey[i] == key {
		return i
	}
	return i - 1
}

// tableBuilder accumulates sorted entries into blocks.
type tableBuilder struct {
	storeVals bool
	blocks    []*block
	cur       *block
	curBytes  int
	firstKeys []string
	keys      []string // all keys, for the bloom filter
	smallest  string
	largest   string
	size      int64
}

func newTableBuilder(storeVals bool) *tableBuilder {
	return &tableBuilder{storeVals: storeVals}
}

func (tb *tableBuilder) startBlock() {
	tb.cur = &block{koffs: []uint32{0}}
	if tb.storeVals {
		tb.cur.voffs = []uint32{0}
	}
	tb.curBytes = 0
}

// add appends an entry; entries must arrive in sorted key order.
func (tb *tableBuilder) add(e kv) {
	entryBytes := len(e.key) + e.vlen + 8
	if tb.cur == nil || tb.curBytes+entryBytes > BlockSize {
		tb.finishBlock()
		tb.startBlock()
		tb.firstKeys = append(tb.firstKeys, e.key)
	}
	b := tb.cur
	b.kbuf = append(b.kbuf, e.key...)
	b.koffs = append(b.koffs, uint32(len(b.kbuf)))
	if tb.storeVals {
		b.vbuf = append(b.vbuf, e.val...)
		b.voffs = append(b.voffs, uint32(len(b.vbuf)))
	}
	b.vlens = append(b.vlens, uint32(e.vlen))
	b.tombs = append(b.tombs, e.tomb)
	tb.curBytes += entryBytes
	tb.size += int64(entryBytes)
	tb.keys = append(tb.keys, e.key)
	if tb.smallest == "" || e.key < tb.smallest {
		tb.smallest = e.key
	}
	if e.key > tb.largest {
		tb.largest = e.key
	}
}

func (tb *tableBuilder) finishBlock() {
	if tb.cur != nil && tb.cur.n() > 0 {
		tb.blocks = append(tb.blocks, tb.cur)
	}
	tb.cur = nil
}

// empty reports whether nothing was added.
func (tb *tableBuilder) empty() bool { return len(tb.keys) == 0 }

// build finalizes the table (id and disk offset assigned by the caller).
func (tb *tableBuilder) build(id int64, level int, diskOff int64) *Table {
	tb.finishBlock()
	f := newBloom(len(tb.keys))
	for _, k := range tb.keys {
		f.add(k)
	}
	return &Table{
		id:       id,
		level:    level,
		smallest: tb.smallest,
		largest:  tb.largest,
		blocks:   tb.blocks,
		firstKey: tb.firstKeys,
		filter:   f,
		diskOff:  diskOff,
		size:     tb.size,
	}
}
