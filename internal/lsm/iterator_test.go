package lsm

import (
	"fmt"
	"sort"
	"testing"
	"testing/quick"
)

func TestIteratorFullScanSorted(t *testing.T) {
	db := testDB(t)
	want := []string{}
	for i := 0; i < 500; i++ {
		k := fmt.Sprintf("key-%04d", i*3%500)
		db.Put(k, []byte(k+"-v"), 0)
	}
	seen := map[string]bool{}
	for i := 0; i < 500; i++ {
		k := fmt.Sprintf("key-%04d", i*3%500)
		if !seen[k] {
			seen[k] = true
			want = append(want, k)
		}
	}
	sort.Strings(want)
	db.Flush() // spread data across levels

	it := db.NewIterator("", "")
	var got []string
	for it.Next() {
		got = append(got, it.Key())
		if string(it.Value()) != it.Key()+"-v" {
			t.Fatalf("value mismatch at %s", it.Key())
		}
	}
	if len(got) != len(want) {
		t.Fatalf("scan returned %d keys, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("scan[%d] = %s, want %s", i, got[i], want[i])
		}
	}
}

func TestIteratorNewestVersionWins(t *testing.T) {
	db := testDB(t)
	db.Put("k", []byte("old"), 0)
	db.Flush() // old version lives in a table
	db.Put("k", []byte("new"), 0)

	it := db.NewIterator("", "")
	if !it.Next() {
		t.Fatal("empty scan")
	}
	if it.Key() != "k" || string(it.Value()) != "new" {
		t.Fatalf("got (%s, %s), want (k, new)", it.Key(), it.Value())
	}
	if it.Next() {
		t.Fatal("duplicate key surfaced")
	}
}

func TestIteratorTombstoneSuppresses(t *testing.T) {
	db := testDB(t)
	db.Put("a", []byte("1"), 0)
	db.Put("b", []byte("2"), 0)
	db.Flush()
	db.Delete("a")

	it := db.NewIterator("", "")
	var keys []string
	for it.Next() {
		keys = append(keys, it.Key())
	}
	if len(keys) != 1 || keys[0] != "b" {
		t.Fatalf("scan = %v, want [b]", keys)
	}
}

func TestIteratorRangeBounds(t *testing.T) {
	db := testDB(t)
	for i := 0; i < 100; i++ {
		db.Put(fmt.Sprintf("key-%03d", i), nil, 8)
	}
	db.Flush()
	it := db.NewIterator("key-020", "key-030")
	var keys []string
	for it.Next() {
		keys = append(keys, it.Key())
	}
	if len(keys) != 10 {
		t.Fatalf("range scan returned %d keys, want 10: %v", len(keys), keys)
	}
	if keys[0] != "key-020" || keys[9] != "key-029" {
		t.Fatalf("bounds wrong: %v", keys)
	}
}

func TestIteratorEmptyRange(t *testing.T) {
	db := testDB(t)
	db.Put("a", nil, 1)
	it := db.NewIterator("x", "z")
	if it.Next() {
		t.Fatal("empty range yielded a key")
	}
	if it.Valid() {
		t.Fatal("Valid true after exhausted scan")
	}
	if it.Err() != nil {
		t.Fatalf("Err = %v", it.Err())
	}
}

func TestIteratorChargesDiskTime(t *testing.T) {
	db := testDB(t, func(c *Config) { c.StoreValues = false })
	for i := 0; i < 3000; i++ {
		db.Put(fmt.Sprintf("key-%06d", i), nil, 64)
	}
	db.Flush()
	before := db.clock.Now()
	it := db.NewIterator("", "")
	n := 0
	for it.Next() {
		n++
	}
	if n != 3000 {
		t.Fatalf("scanned %d keys", n)
	}
	if db.clock.Now() == before {
		t.Fatal("full scan advanced no simulated time")
	}
}

// Property: iterator output equals the model's sorted live keys for random
// op sequences across flush boundaries.
func TestIteratorMatchesModel(t *testing.T) {
	if err := quick.Check(func(ops []uint16) bool {
		db := testDB(t, func(c *Config) { c.MemtableBytes = 2 << 10 })
		model := map[string]string{}
		for n, op := range ops {
			k := fmt.Sprintf("key-%02d", op%37)
			switch op % 4 {
			case 3:
				db.Delete(k)
				delete(model, k)
			default:
				v := fmt.Sprintf("v%d", n)
				db.Put(k, []byte(v), 0)
				model[k] = v
			}
		}
		want := make([]string, 0, len(model))
		for k := range model {
			want = append(want, k)
		}
		sort.Strings(want)
		it := db.NewIterator("", "")
		i := 0
		for it.Next() {
			if i >= len(want) || it.Key() != want[i] || string(it.Value()) != model[want[i]] {
				return false
			}
			i++
		}
		return i == len(want)
	}, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
