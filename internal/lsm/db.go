// Package lsm implements a leveled log-structured merge-tree key-value
// store in the mould of RocksDB, complete enough to reproduce the paper's
// end-to-end evaluation (§4.2): a memtable with a write-ahead log, leveled
// SSTables with per-table Bloom filters and pinned index blocks, a DRAM
// block cache, and the secondary-cache hook that the four CacheLib schemes
// plug into. Storage sits on any simulated block device; the paper (and the
// default harness) backs it with an HDD so that secondary-cache misses are
// expensive and the hit ratio dominates throughput (Table 2).
package lsm

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"znscache/internal/device"
	"znscache/internal/obs"
	"znscache/internal/sim"
	"znscache/internal/stats"
)

// Errors returned by the DB.
var (
	ErrBadConfig = errors.New("lsm: invalid configuration")
	ErrNotFound  = errors.New("lsm: key not found")
)

// Config parameterizes the store.
type Config struct {
	// Disk is the backing device for WAL, SSTables.
	Disk device.BlockDevice
	// MemtableBytes triggers a flush (default 4 MiB).
	MemtableBytes int64
	// L0CompactionTrigger compacts L0 when it holds this many tables
	// (default 4, RocksDB's default).
	L0CompactionTrigger int
	// BaseLevelBytes is L1's size budget; each deeper level is 10x
	// (default 16 MiB).
	BaseLevelBytes int64
	// BlockCacheBytes is the DRAM block-cache capacity (default 32 MiB,
	// the paper's setting).
	BlockCacheBytes int64
	// Secondary is the flash secondary cache; nil disables it.
	Secondary SecondaryCache
	// StoreValues retains value bytes (tests/examples); otherwise values
	// are metadata-sized only and Get returns nil payloads.
	StoreValues bool
	// WALBufferBytes groups commits before a WAL device write (default 64 KiB).
	WALBufferBytes int64
	// Clock is the shared virtual clock (required so the secondary cache
	// and DB advance the same timeline); a fresh one is created if nil.
	Clock *sim.Clock
	// CPULookup is the software cost per Get (default 2µs).
	CPULookup time.Duration
}

func (c *Config) fillDefaults() error {
	if c.Disk == nil {
		return fmt.Errorf("%w: nil disk", ErrBadConfig)
	}
	if c.MemtableBytes == 0 {
		c.MemtableBytes = 4 << 20
	}
	if c.L0CompactionTrigger == 0 {
		c.L0CompactionTrigger = 4
	}
	if c.BaseLevelBytes == 0 {
		c.BaseLevelBytes = 16 << 20
	}
	if c.BlockCacheBytes == 0 {
		c.BlockCacheBytes = 32 << 20
	}
	if c.WALBufferBytes == 0 {
		c.WALBufferBytes = 64 << 10
	}
	if c.Clock == nil {
		c.Clock = sim.NewClock()
	}
	if c.CPULookup == 0 {
		c.CPULookup = 2 * time.Microsecond
	}
	return nil
}

// numLevels bounds the level hierarchy.
const numLevels = 7

// DB is the store. Methods are not safe for concurrent use (deterministic
// single-threaded simulation).
type DB struct {
	cfg   Config
	clock *sim.Clock

	mem      map[string]kv
	memBytes int64

	levels  [numLevels][]*Table // levels[0] newest-last; levels[1..] sorted by smallest
	nextID  int64
	diskCur int64 // bump allocator over the disk
	walPend int64 // WAL bytes buffered and not yet written
	walOff  int64 // WAL region cursor (wraps within a 256 MiB ring)

	blockCache *dramCache
	secondary  SecondaryCache

	// Observability.
	GetLat           *stats.Histogram
	PutLat           *stats.Histogram
	Flushes          stats.Counter
	Compactions      stats.Counter
	DiskReads        stats.Counter
	SecondaryHits    stats.Counter
	SecondaryLookups stats.Counter
}

// walRing is the disk space reserved for the write-ahead log.
const walRing = 256 << 20

// Open builds an empty DB on the device.
func Open(cfg Config) (*DB, error) {
	if err := cfg.fillDefaults(); err != nil {
		return nil, err
	}
	sec := cfg.Secondary
	if sec == nil {
		sec = noSecondary{}
	}
	db := &DB{
		cfg:       cfg,
		clock:     cfg.Clock,
		mem:       make(map[string]kv),
		diskCur:   walRing, // tables start after the WAL ring
		secondary: sec,
		GetLat:    stats.NewHistogram(),
		PutLat:    stats.NewHistogram(),
	}
	db.blockCache = newDRAMCache(cfg.BlockCacheBytes, sec)
	return db, nil
}

// Clock exposes the shared virtual clock.
func (db *DB) Clock() *sim.Clock { return db.clock }

// Put inserts or updates a key. val may be nil with an explicit length
// (metadata-only payload).
func (db *DB) Put(key string, val []byte, vlen int) error {
	if key == "" {
		return fmt.Errorf("%w: empty key", ErrBadConfig)
	}
	if val != nil {
		vlen = len(val)
	}
	start := db.clock.Now()
	e := kv{key: key, vlen: vlen}
	if db.cfg.StoreValues {
		e.val = append([]byte(nil), val...)
	}
	if old, ok := db.mem[key]; ok {
		db.memBytes -= int64(len(old.key) + old.vlen)
	}
	db.mem[key] = e
	entryBytes := int64(len(key) + vlen)
	db.memBytes += entryBytes

	// WAL: group commit; charge a sequential device write when the buffer
	// fills (sector-aligned).
	db.walPend += entryBytes + 16
	if db.walPend >= db.cfg.WALBufferBytes {
		n := int(db.walPend / device.SectorSize * device.SectorSize)
		if n > 0 {
			if db.walOff+int64(n) > walRing {
				db.walOff = 0
			}
			lat, err := db.cfg.Disk.WriteAt(db.clock.Now(), nil, n, db.walOff)
			if err != nil {
				return fmt.Errorf("lsm: wal write: %w", err)
			}
			db.walOff += int64(n)
			db.clock.Advance(lat)
			db.walPend -= int64(n)
		}
	}

	if db.memBytes >= db.cfg.MemtableBytes {
		if err := db.flushMemtable(); err != nil {
			return err
		}
	}
	db.PutLat.Observe(db.clock.Now() - start)
	return nil
}

// Delete writes a tombstone for key.
func (db *DB) Delete(key string) error {
	if key == "" {
		return fmt.Errorf("%w: empty key", ErrBadConfig)
	}
	e := kv{key: key, tomb: true}
	if old, ok := db.mem[key]; ok {
		db.memBytes -= int64(len(old.key) + old.vlen)
	}
	db.mem[key] = e
	db.memBytes += int64(len(key))
	return nil
}

// flushMemtable freezes the memtable into an L0 table.
func (db *DB) flushMemtable() error {
	if len(db.mem) == 0 {
		return nil
	}
	keys := make([]string, 0, len(db.mem))
	for k := range db.mem {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	tb := newTableBuilder(db.cfg.StoreValues)
	for _, k := range keys {
		tb.add(db.mem[k])
	}
	t, err := db.writeTable(tb, 0)
	if err != nil {
		return err
	}
	db.levels[0] = append(db.levels[0], t) // newest last
	db.mem = make(map[string]kv)
	db.memBytes = 0
	db.Flushes.Inc()
	return db.maybeCompact()
}

// writeTable persists a built table: one sequential device write.
func (db *DB) writeTable(tb *tableBuilder, level int) (*Table, error) {
	id := db.nextID
	db.nextID++
	off := db.diskCur
	t := tb.build(id, level, off)
	// Round the footprint to sectors for the device write.
	n := (t.size + device.SectorSize - 1) / device.SectorSize * device.SectorSize
	if n == 0 {
		n = device.SectorSize
	}
	db.diskCur += n
	lat, err := db.cfg.Disk.WriteAt(db.clock.Now(), nil, int(n), off)
	if err != nil {
		return nil, fmt.Errorf("lsm: table write: %w", err)
	}
	db.clock.Advance(lat)
	return t, nil
}

// Get returns the value for key. With StoreValues off, the returned slice
// is nil but found/latency semantics are exact.
func (db *DB) Get(key string) ([]byte, bool, error) {
	start := db.clock.Now()
	db.clock.Advance(db.cfg.CPULookup)
	defer func() { db.GetLat.Observe(db.clock.Now() - start) }()

	if e, ok := db.mem[key]; ok {
		if e.tomb {
			return nil, false, nil
		}
		return e.val, true, nil
	}
	// L0: newest table first (they overlap).
	for i := len(db.levels[0]) - 1; i >= 0; i-- {
		t := db.levels[0][i]
		if v, found, tomb, err := db.searchTable(t, key); err != nil {
			return nil, false, err
		} else if found {
			return v, !tomb, nil
		}
	}
	// Deeper levels: at most one covering table per level.
	for lvl := 1; lvl < numLevels; lvl++ {
		tables := db.levels[lvl]
		i := sort.Search(len(tables), func(i int) bool { return tables[i].largest >= key })
		if i >= len(tables) || !tables[i].covers(key) {
			continue
		}
		if v, found, tomb, err := db.searchTable(tables[i], key); err != nil {
			return nil, false, err
		} else if found {
			return v, !tomb, nil
		}
	}
	return nil, false, nil
}

// searchTable probes one table through the filter, index, and cache
// hierarchy. Returns (value, found, tombstone).
func (db *DB) searchTable(t *Table, key string) ([]byte, bool, bool, error) {
	if !t.covers(key) || !t.filter.mayContain(key) {
		return nil, false, false, nil
	}
	bi := t.blockFor(key)
	if bi < 0 {
		return nil, false, false, nil
	}
	blk := t.blocks[bi]
	id := blockID{table: t.id, block: bi}
	sz := blk.storedBytes()

	if !db.blockCache.lookup(id) {
		// DRAM miss: try the secondary cache, then the disk.
		db.SecondaryLookups.Inc()
		if db.secondary.Lookup(id.cacheKey(), sz) {
			db.SecondaryHits.Inc()
		} else {
			// Disk read of the block's sector span.
			off := t.diskOff + int64(bi)*BlockSize
			n := (sz + device.SectorSize - 1) / device.SectorSize * device.SectorSize
			if n == 0 {
				n = device.SectorSize
			}
			buf := make([]byte, n)
			lat, err := db.cfg.Disk.ReadAt(db.clock.Now(), buf, off)
			if err != nil {
				return nil, false, false, fmt.Errorf("lsm: block read: %w", err)
			}
			db.clock.Advance(lat)
			db.DiskReads.Inc()
		}
		// Promote into DRAM (spilling a victim to the secondary cache).
		db.blockCache.insert(id, sz)
	} else {
		db.clock.Advance(200 * time.Nanosecond) // DRAM cache hit cost
	}

	i := blk.find(key)
	if i < 0 {
		return nil, false, false, nil
	}
	v, _, tomb := blk.val(i)
	if v != nil {
		v = append([]byte(nil), v...)
	}
	return v, true, tomb, nil
}

// maybeCompact runs compactions until every level is within budget.
func (db *DB) maybeCompact() error {
	for {
		level := db.pickCompaction()
		if level < 0 {
			return nil
		}
		if err := db.compact(level); err != nil {
			return err
		}
	}
}

// pickCompaction returns a level needing compaction, or -1.
func (db *DB) pickCompaction() int {
	if len(db.levels[0]) >= db.cfg.L0CompactionTrigger {
		return 0
	}
	budget := db.cfg.BaseLevelBytes
	for lvl := 1; lvl < numLevels-1; lvl++ {
		var sz int64
		for _, t := range db.levels[lvl] {
			sz += t.size
		}
		if sz > budget {
			return lvl
		}
		budget *= 10
	}
	return -1
}

// compact merges level's tables (all of L0, or the first over-budget table
// of a deeper level) with the overlapping tables of level+1.
func (db *DB) compact(level int) error {
	db.Compactions.Inc()
	var inputs []*Table
	if level == 0 {
		inputs = append(inputs, db.levels[0]...)
		db.levels[0] = nil
	} else {
		// Rotate: take the table with the smallest key (simple heuristic).
		inputs = append(inputs, db.levels[level][0])
		db.levels[level] = db.levels[level][1:]
	}
	lo, hi := inputs[0].smallest, inputs[0].largest
	for _, t := range inputs[1:] {
		if t.smallest < lo {
			lo = t.smallest
		}
		if t.largest > hi {
			hi = t.largest
		}
	}
	next := level + 1
	var overlap, keep []*Table
	for _, t := range db.levels[next] {
		if t.largest < lo || t.smallest > hi {
			keep = append(keep, t)
		} else {
			overlap = append(overlap, t)
		}
	}
	db.levels[next] = keep

	// Merge: newest-wins. Priority by recency: L0 tables are ordered
	// oldest→newest; inputs from `level` are newer than `overlap`.
	merged := mergeTables(append(append([]*Table(nil), overlap...), inputs...), db.cfg.StoreValues)

	// Charge the compaction reads (all input bytes, sequential-ish).
	var readBytes int64
	for _, t := range inputs {
		readBytes += t.size
	}
	for _, t := range overlap {
		readBytes += t.size
	}
	if readBytes > 0 {
		n := (readBytes + device.SectorSize - 1) / device.SectorSize * device.SectorSize
		buf := make([]byte, device.SectorSize)
		// One seek plus streaming: model as a single big sequential read at
		// the first input's offset.
		_ = buf
		lat, err := db.cfg.Disk.ReadAt(db.clock.Now(), make([]byte, int(min64(n, 1<<20))), inputs[0].diskOff)
		if err != nil {
			return fmt.Errorf("lsm: compaction read: %w", err)
		}
		db.clock.Advance(lat)
	}

	// Split merged output into ~32 MiB tables.
	const targetTable = 32 << 20
	tb := newTableBuilder(db.cfg.StoreValues)
	var outs []*Table
	var curBytes int64
	flushOut := func() error {
		if tb.empty() {
			return nil
		}
		t, err := db.writeTable(tb, next)
		if err != nil {
			return err
		}
		outs = append(outs, t)
		tb = newTableBuilder(db.cfg.StoreValues)
		curBytes = 0
		return nil
	}
	for _, e := range merged {
		// Drop tombstones merging into the last level.
		if e.tomb && next == numLevels-1 {
			continue
		}
		tb.add(e)
		curBytes += int64(len(e.key) + e.vlen + 8)
		if curBytes >= targetTable {
			if err := flushOut(); err != nil {
				return err
			}
		}
	}
	if err := flushOut(); err != nil {
		return err
	}
	db.levels[next] = append(db.levels[next], outs...)
	sort.Slice(db.levels[next], func(i, j int) bool {
		return db.levels[next][i].smallest < db.levels[next][j].smallest
	})
	return nil
}

// mergeTables merges tables into a single sorted run; later tables in the
// slice win key conflicts (callers order them oldest first).
func mergeTables(tables []*Table, storeVals bool) []kv {
	out := make(map[string]kv)
	for _, t := range tables {
		for _, b := range t.blocks {
			for i := 0; i < b.n(); i++ {
				v, vlen, tomb := b.val(i)
				e := kv{key: b.key(i), vlen: vlen, tomb: tomb}
				if storeVals && v != nil {
					e.val = append([]byte(nil), v...)
				}
				out[e.key] = e
			}
		}
	}
	keys := make([]string, 0, len(out))
	for k := range out {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	res := make([]kv, 0, len(keys))
	for _, k := range keys {
		res = append(res, out[k])
	}
	return res
}

// Flush forces the memtable to L0 (used between benchmark phases).
func (db *DB) Flush() error { return db.flushMemtable() }

// TableCount reports tables per level (tests).
func (db *DB) TableCount(level int) int { return len(db.levels[level]) }

// BlockCacheHitRatio reports the DRAM block cache hit ratio.
func (db *DB) BlockCacheHitRatio() float64 {
	tot := db.blockCache.hits + db.blockCache.misses
	if tot == 0 {
		return 0
	}
	return float64(db.blockCache.hits) / float64(tot)
}

// MetricsInto implements obs.MetricSource: DB latency distributions,
// flush/compaction activity, and secondary-cache effectiveness.
func (db *DB) MetricsInto(r *obs.Registry, labels obs.Labels) {
	ls := labels.With("layer", "lsm")
	r.Histogram("lsm_get_seconds", "DB Get latency (simulated)", ls, db.GetLat)
	r.Histogram("lsm_put_seconds", "DB Put latency (simulated)", ls, db.PutLat)
	r.Counter("lsm_flushes_total", "Memtable flushes", ls, &db.Flushes)
	r.Counter("lsm_compactions_total", "Compaction passes", ls, &db.Compactions)
	r.Counter("lsm_disk_reads_total", "Data-block disk reads", ls, &db.DiskReads)
	r.Counter("lsm_secondary_lookups_total", "Secondary-cache lookups", ls, &db.SecondaryLookups)
	r.Counter("lsm_secondary_hits_total", "Secondary-cache hits", ls, &db.SecondaryHits)
}

// SecondaryHitRatio reports hits over lookups of the secondary cache.
func (db *DB) SecondaryHitRatio() float64 {
	l := db.SecondaryLookups.Load()
	if l == 0 {
		return 0
	}
	return float64(db.SecondaryHits.Load()) / float64(l)
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
