package lsm

import (
	"container/list"
	"fmt"
)

// blockID names one data block globally.
type blockID struct {
	table int64
	block int
}

// cacheKey renders the block identity as the secondary-cache key, matching
// RocksDB's practice of keying the secondary cache by block handle.
func (b blockID) cacheKey() string {
	return fmt.Sprintf("t%d#b%d", b.table, b.block)
}

// SecondaryCache is the hook the four schemes plug into: CacheLib serving
// as RocksDB's secondary (flash) cache (§4.2). Implementations charge their
// own latency to the shared virtual clock.
type SecondaryCache interface {
	// Lookup reports whether the block is cached (promoting it is the
	// caller's job). sizeHint is the block's byte size.
	Lookup(key string, sizeHint int) bool
	// Insert stores the block (metadata-only content is fine).
	Insert(key string, size int)
}

// dramCache is the primary (DRAM) block cache: strict LRU over whole
// blocks, capacity in bytes. On eviction, the victim spills to the
// secondary cache — the RocksDB secondary-cache contract.
type dramCache struct {
	capacity int64
	used     int64
	entries  map[blockID]*list.Element
	order    *list.List // front = MRU
	spill    SecondaryCache

	hits   uint64
	misses uint64
}

type dramEntry struct {
	id   blockID
	size int
}

func newDRAMCache(capacity int64, spill SecondaryCache) *dramCache {
	return &dramCache{
		capacity: capacity,
		entries:  make(map[blockID]*list.Element),
		order:    list.New(),
		spill:    spill,
	}
}

// lookup reports a hit and refreshes recency.
func (c *dramCache) lookup(id blockID) bool {
	if e, ok := c.entries[id]; ok {
		c.order.MoveToFront(e)
		c.hits++
		return true
	}
	c.misses++
	return false
}

// insert adds a block, evicting LRU victims to the secondary cache.
func (c *dramCache) insert(id blockID, size int) {
	if e, ok := c.entries[id]; ok {
		c.order.MoveToFront(e)
		return
	}
	for c.used+int64(size) > c.capacity && c.order.Len() > 0 {
		back := c.order.Back()
		victim := back.Value.(dramEntry)
		c.order.Remove(back)
		delete(c.entries, victim.id)
		c.used -= int64(victim.size)
		if c.spill != nil {
			c.spill.Insert(victim.id.cacheKey(), victim.size)
		}
	}
	if int64(size) > c.capacity {
		return // block larger than the whole cache: don't cache
	}
	c.entries[id] = c.order.PushFront(dramEntry{id: id, size: size})
	c.used += int64(size)
}

// noSecondary is the null secondary cache (plain RocksDB).
type noSecondary struct{}

func (noSecondary) Lookup(string, int) bool { return false }
func (noSecondary) Insert(string, int)      {}
