package lsm

import (
	"bytes"
	"fmt"
	"testing"
	"testing/quick"
	"time"

	"znscache/internal/hdd"
	"znscache/internal/sim"
)

func testDB(t *testing.T, mutate ...func(*Config)) *DB {
	t.Helper()
	cfg := Config{
		Disk:            hdd.New(hdd.Config{Capacity: 8 << 30}),
		MemtableBytes:   64 << 10,
		BaseLevelBytes:  256 << 10,
		BlockCacheBytes: 64 << 10,
		StoreValues:     true,
	}
	for _, m := range mutate {
		m(&cfg)
	}
	db, err := Open(cfg)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return db
}

func TestOpenRejectsNilDisk(t *testing.T) {
	if _, err := Open(Config{}); err == nil {
		t.Fatal("Open with nil disk succeeded")
	}
}

func TestPutGetMemtable(t *testing.T) {
	db := testDB(t)
	if err := db.Put("alpha", []byte("one"), 0); err != nil {
		t.Fatalf("Put: %v", err)
	}
	v, ok, err := db.Get("alpha")
	if err != nil || !ok || string(v) != "one" {
		t.Fatalf("Get = (%q, %v, %v)", v, ok, err)
	}
	if _, ok, _ := db.Get("missing"); ok {
		t.Fatal("hit on missing key")
	}
}

func TestOverwriteWins(t *testing.T) {
	db := testDB(t)
	db.Put("k", []byte("v1"), 0)
	db.Put("k", []byte("v2"), 0)
	v, ok, _ := db.Get("k")
	if !ok || string(v) != "v2" {
		t.Fatalf("Get = %q, %v", v, ok)
	}
}

func TestDeleteTombstone(t *testing.T) {
	db := testDB(t)
	db.Put("k", []byte("v"), 0)
	db.Delete("k")
	if _, ok, _ := db.Get("k"); ok {
		t.Fatal("deleted key still visible")
	}
	// Deletion survives a flush.
	db.Put("other", []byte("x"), 0)
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := db.Get("k"); ok {
		t.Fatal("deleted key visible after flush")
	}
}

func TestGetAfterFlush(t *testing.T) {
	db := testDB(t)
	want := map[string]string{}
	for i := 0; i < 100; i++ {
		k := fmt.Sprintf("key-%04d", i)
		v := fmt.Sprintf("val-%04d", i)
		want[k] = v
		db.Put(k, []byte(v), 0)
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	if db.TableCount(0) == 0 {
		t.Fatal("flush produced no L0 table")
	}
	for k, v := range want {
		got, ok, err := db.Get(k)
		if err != nil || !ok || string(got) != v {
			t.Fatalf("Get(%s) = (%q, %v, %v), want %q", k, got, ok, err, v)
		}
	}
}

func TestCompactionPreservesData(t *testing.T) {
	// Insert enough to force flushes and L0→L1 compactions; every key's
	// latest value must survive.
	db := testDB(t)
	val := bytes.Repeat([]byte{0x33}, 100)
	const n = 5000
	for i := 0; i < n; i++ {
		k := fmt.Sprintf("key-%06d", i%2000) // overwrites force merge logic
		if err := db.Put(k, val, 0); err != nil {
			t.Fatalf("Put %d: %v", i, err)
		}
	}
	if db.Compactions.Load() == 0 {
		t.Fatal("test vacuous: no compaction ran")
	}
	for i := 0; i < 2000; i++ {
		k := fmt.Sprintf("key-%06d", i)
		got, ok, err := db.Get(k)
		if err != nil || !ok {
			t.Fatalf("Get(%s) = (%v, %v) after compaction", k, ok, err)
		}
		if !bytes.Equal(got, val) {
			t.Fatalf("Get(%s) returned corrupted value", k)
		}
	}
	// L0 must be within trigger after compactions settle.
	if db.TableCount(0) >= db.cfg.L0CompactionTrigger {
		t.Fatalf("L0 has %d tables, compaction didn't settle", db.TableCount(0))
	}
}

func TestLevelTablesSortedAndDisjoint(t *testing.T) {
	db := testDB(t)
	for i := 0; i < 8000; i++ {
		db.Put(fmt.Sprintf("key-%06d", i*7%3000), nil, 100)
	}
	for lvl := 1; lvl < numLevels; lvl++ {
		tables := db.levels[lvl]
		for i := 1; i < len(tables); i++ {
			if tables[i-1].largest >= tables[i].smallest {
				t.Fatalf("level %d tables overlap: [%s,%s] then [%s,%s]", lvl,
					tables[i-1].smallest, tables[i-1].largest,
					tables[i].smallest, tables[i].largest)
			}
		}
	}
}

func TestBloomFilterSkipsTables(t *testing.T) {
	b := newBloom(1000)
	for i := 0; i < 1000; i++ {
		b.add(fmt.Sprintf("key-%d", i))
	}
	for i := 0; i < 1000; i++ {
		if !b.mayContain(fmt.Sprintf("key-%d", i)) {
			t.Fatal("bloom false negative")
		}
	}
	fp := 0
	for i := 0; i < 10000; i++ {
		if b.mayContain(fmt.Sprintf("other-%d", i)) {
			fp++
		}
	}
	if fp > 500 { // 10 bits/key should be ~1%; allow 5%
		t.Fatalf("bloom FP rate %d/10000 too high", fp)
	}
	if b.sizeBytes() == 0 {
		t.Fatal("bloom reports zero size")
	}
}

func TestBlockFindBoundaries(t *testing.T) {
	tb := newTableBuilder(true)
	for i := 0; i < 300; i++ {
		tb.add(kv{key: fmt.Sprintf("key-%04d", i*2), val: []byte("v"), vlen: 1})
	}
	tab := tb.build(1, 0, 0)
	if len(tab.blocks) < 2 {
		t.Fatalf("expected multiple blocks, got %d", len(tab.blocks))
	}
	// Every inserted key is findable; absent keys are not.
	for i := 0; i < 300; i++ {
		k := fmt.Sprintf("key-%04d", i*2)
		bi := tab.blockFor(k)
		if bi < 0 || tab.blocks[bi].find(k) < 0 {
			t.Fatalf("key %s not found via index", k)
		}
		absent := fmt.Sprintf("key-%04d", i*2+1)
		bi = tab.blockFor(absent)
		if bi >= 0 && tab.blocks[bi].find(absent) >= 0 {
			t.Fatalf("absent key %s found", absent)
		}
	}
}

func TestDRAMCacheLRUAndSpill(t *testing.T) {
	var spilled []string
	spy := spySecondary{onInsert: func(k string) { spilled = append(spilled, k) }}
	c := newDRAMCache(3*4096, &spy)
	a, b, d := blockID{1, 0}, blockID{1, 1}, blockID{1, 2}
	c.insert(a, 4096)
	c.insert(b, 4096)
	c.insert(d, 4096)
	c.lookup(a)                   // refresh a
	c.insert(blockID{1, 3}, 4096) // evicts b (LRU)
	if len(spilled) != 1 || spilled[0] != b.cacheKey() {
		t.Fatalf("spilled = %v, want [%s]", spilled, b.cacheKey())
	}
	if !c.lookup(a) {
		t.Fatal("refreshed block evicted")
	}
}

type spySecondary struct {
	onInsert func(string)
	hit      func(string) bool
}

func (s *spySecondary) Lookup(key string, _ int) bool {
	if s.hit != nil {
		return s.hit(key)
	}
	return false
}
func (s *spySecondary) Insert(key string, _ int) {
	if s.onInsert != nil {
		s.onInsert(key)
	}
}

func TestSecondaryCacheServesDRAMMisses(t *testing.T) {
	// A secondary cache that "remembers everything" must absorb reads that
	// miss DRAM, eliminating disk reads after warmup.
	seen := map[string]bool{}
	spy := &spySecondary{
		onInsert: func(k string) { seen[k] = true },
		hit:      func(k string) bool { return seen[k] },
	}
	db := testDB(t, func(c *Config) {
		c.Secondary = spy
		c.BlockCacheBytes = 2 * 4096 // tiny DRAM cache: everything spills
		c.StoreValues = false
	})
	const n = 3000
	for i := 0; i < n; i++ {
		db.Put(fmt.Sprintf("key-%06d", i), nil, 64)
	}
	db.Flush()
	// Two passes: the first warms the hierarchy, the second must hit the
	// secondary cache instead of the disk.
	for pass := 0; pass < 2; pass++ {
		db.DiskReads.Reset()
		db.SecondaryHits.Reset()
		db.SecondaryLookups.Reset()
		for i := 0; i < n; i += 7 {
			if _, ok, err := db.Get(fmt.Sprintf("key-%06d", i)); !ok || err != nil {
				t.Fatalf("pass %d Get: (%v, %v)", pass, ok, err)
			}
		}
		if pass == 1 && db.SecondaryHitRatio() < 0.9 {
			t.Fatalf("second-pass secondary hit ratio %.2f, want ≥0.9", db.SecondaryHitRatio())
		}
	}
	if db.DiskReads.Load() != 0 {
		t.Fatalf("disk reads on warm pass: %d", db.DiskReads.Load())
	}
}

func TestGetLatencyReflectsDiskMisses(t *testing.T) {
	// Cold reads pay HDD seek latency (~12ms); warm DRAM reads are µs.
	db := testDB(t, func(c *Config) {
		c.BlockCacheBytes = 64 << 20 // everything fits after first touch
		c.StoreValues = false
		// Narrow sequential window so a block read after the table write
		// counts as a genuine random access.
		c.Disk = hdd.New(hdd.Config{Capacity: 8 << 30, TrackSkipBytes: 4096})
	})
	for i := 0; i < 2000; i++ {
		db.Put(fmt.Sprintf("key-%06d", i), nil, 64)
	}
	db.Flush()
	before := db.clock.Now()
	db.Get("key-000100")
	coldLat := db.clock.Now() - before
	if coldLat < 5*time.Millisecond {
		t.Fatalf("cold get %v, want HDD-class latency", coldLat)
	}
	before = db.clock.Now()
	db.Get("key-000100")
	warmLat := db.clock.Now() - before
	if warmLat > time.Millisecond {
		t.Fatalf("warm get %v, want DRAM-class latency", warmLat)
	}
}

func TestWALChargesDeviceWrites(t *testing.T) {
	disk := hdd.New(hdd.Config{Capacity: 8 << 30})
	db, err := Open(Config{
		Disk: disk, MemtableBytes: 1 << 30, WALBufferBytes: 8 << 10,
		Clock: sim.NewClock(),
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		db.Put(fmt.Sprintf("key-%06d", i), nil, 64)
	}
	if disk.Writes.Load() == 0 {
		t.Fatal("WAL never wrote to the device")
	}
}

func TestPropertyLatestWriteWins(t *testing.T) {
	// Property: for any op sequence of puts/deletes over a small key space,
	// Get returns exactly the latest surviving write, across flushes and
	// compactions.
	if err := quick.Check(func(ops []uint16, flushMask uint8) bool {
		db := testDB(t, func(c *Config) { c.MemtableBytes = 2 << 10 })
		model := map[string]string{}
		for n, op := range ops {
			k := fmt.Sprintf("key-%d", op%31)
			switch op % 5 {
			case 4:
				db.Delete(k)
				delete(model, k)
			default:
				v := fmt.Sprintf("v%d", n)
				db.Put(k, []byte(v), 0)
				model[k] = v
			}
			if op%8 == uint16(flushMask%8) {
				if err := db.Flush(); err != nil {
					return false
				}
			}
		}
		for k, v := range model {
			got, ok, err := db.Get(k)
			if err != nil || !ok || string(got) != v {
				return false
			}
		}
		// Deleted/absent keys must be absent.
		for i := 0; i < 31; i++ {
			k := fmt.Sprintf("key-%d", i)
			if _, inModel := model[k]; !inModel {
				if _, ok, _ := db.Get(k); ok {
					return false
				}
			}
		}
		return true
	}, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
