package server

import (
	"bufio"
	"encoding/binary"
	"net"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"znscache/internal/cache"
	"znscache/internal/obs"
)

// This file is the raw-speed serving path (DESIGN.md §12): commands are
// parsed into a per-connection batch without executing them, the batch is
// executed at the pipeline boundary with shard-affinity dispatch (each
// shard's write lock is taken at most once per batch, gets run lock-free on
// the connection goroutine), and the responses are rendered in request
// order into a reusable response ring flushed with one writev.

// ShardedBackend is the optional Backend extension the dispatch path needs:
// a shard-partitioned store whose mutations can be grouped per shard and
// applied in one critical section. znscache.ShardedCache implements it; a
// backend without it (the test map backend) is served inline, one op at a
// time, exactly as the classic path did.
type ShardedBackend interface {
	Backend
	// NumShards returns the shard count.
	NumShards() int
	// ShardFor returns the shard index key maps to.
	ShardFor(key string) int
	// ExecShard runs fn against shard i's engine under that shard's write
	// lock. It returns an error (without running fn) when the backend can
	// no longer execute (closed).
	ExecShard(shard int, fn func(*cache.Cache)) error
}

// op kinds.
const (
	opGet uint8 = iota
	opSet
	opDel
	opStats
	opVersion
	opMsg // pre-decided response line (protocol errors)
)

// set execution modes (memcached exptime semantics resolved at parse time,
// except setTTLAbs whose remaining TTL depends on the owning shard's clock
// and is therefore resolved at execution time).
const (
	setStore uint8 = iota
	setTTL
	setTTLAbs // op.ttl is a deadline on the backend clock, not a TTL
	setDelete // exptime in the past: observably identical to a delete
)

// Canned protocol error lines (full responses, CRLF included).
const (
	msgBadFormat = "CLIENT_ERROR bad command line format\r\n"
	msgBadLen    = "CLIENT_ERROR bad data chunk length\r\n"
	msgBadChunk  = "CLIENT_ERROR bad data chunk\r\n"
	msgBadKey    = "CLIENT_ERROR bad key\r\n"
	msgTooLarge  = "SERVER_ERROR object too large for cache\r\n"
)

// Batch caps: a batch executes early (without flushing, so the one-flush-
// per-pipeline-batch invariant holds) when it accumulates this many ops or
// buffered set bodies, bounding memory under deep pipelines.
const (
	maxBatchOps  = 256
	maxBatchBody = 4 << 20
)

// op is one parsed command awaiting execution, plus its execution results.
type op struct {
	kind    uint8
	setMode uint8
	noreply bool
	withCas bool
	shard   int32
	k0, k1  int           // opGet: key span in batch.keys
	key     string        // opSet/opDel key
	body    []byte        // opSet: flags-prefixed value, ready for the store
	ttl     time.Duration // opSet: TTL (setTTL) or backend-clock deadline (setTTLAbs)
	msg     string        // opMsg response line
	err     error         // opSet execution error
	found   bool          // opDel execution result
}

// batch accumulates one pipeline batch worth of parsed ops. Get keys and
// their results live in parallel slices indexed by op.k0..k1 so per-key
// storage is reused across batches.
type batch struct {
	ops       []op
	keys      []string
	vals      [][]byte
	hits      []bool
	errs      []error
	bodyBytes int
}

func (b *batch) addMsg(msg string) {
	b.ops = append(b.ops, op{kind: opMsg, msg: msg})
}

// reset clears the batch for reuse, dropping references so bodies and
// values are released to the collector.
func (b *batch) reset() {
	for i := range b.ops {
		b.ops[i] = op{}
	}
	b.ops = b.ops[:0]
	for i := range b.keys {
		b.keys[i] = ""
	}
	b.keys = b.keys[:0]
	for i := range b.vals {
		b.vals[i] = nil
	}
	b.vals = b.vals[:0]
	b.hits = b.hits[:0]
	for i := range b.errs {
		b.errs[i] = nil
	}
	b.errs = b.errs[:0]
	b.bodyBytes = 0
}

// respWriter is the per-connection response ring: response bytes accumulate
// in a reusable arena (small value payloads are copied in, large ones ride
// as zero-copy segments), and a flush materializes the segment list as one
// net.Buffers writev. Nothing allocates per response in steady state.
type respWriter struct {
	arena []byte
	segs  []respSeg
	bufs  net.Buffers
}

// respSeg is one output segment: an arena span (ext nil) or an external
// zero-copy slice.
type respSeg struct {
	off, end int
	ext      []byte
}

// extMinLen is the payload size above which a value is emitted as its own
// writev segment instead of being copied into the arena.
const extMinLen = 512

func (w *respWriter) str(s string) {
	off := len(w.arena)
	w.arena = append(w.arena, s...)
	w.note(off, len(w.arena))
}

func (w *respWriter) bytes(p []byte) {
	if len(p) >= extMinLen {
		w.segs = append(w.segs, respSeg{ext: p})
		return
	}
	off := len(w.arena)
	w.arena = append(w.arena, p...)
	w.note(off, len(w.arena))
}

func (w *respWriter) bytec(c byte) {
	off := len(w.arena)
	w.arena = append(w.arena, c)
	w.note(off, len(w.arena))
}

func (w *respWriter) uint(u uint64) {
	off := len(w.arena)
	w.arena = strconv.AppendUint(w.arena, u, 10)
	w.note(off, len(w.arena))
}

// note records an arena span, coalescing with a preceding contiguous arena
// segment so a batch of small responses flushes as a single iovec.
func (w *respWriter) note(off, end int) {
	if n := len(w.segs); n > 0 {
		last := &w.segs[n-1]
		if last.ext == nil && last.end == off {
			last.end = end
			return
		}
	}
	w.segs = append(w.segs, respSeg{off: off, end: end})
}

func (w *respWriter) empty() bool { return len(w.segs) == 0 }

func (w *respWriter) reset() {
	w.arena = w.arena[:0]
	for i := range w.segs {
		w.segs[i].ext = nil
	}
	w.segs = w.segs[:0]
	// Don't let one giant batch pin a giant arena for the connection's life.
	if cap(w.arena) > 1<<20 {
		w.arena = nil
	}
}

// shardTask is one shard's write group from one batch, executed by that
// shard's worker goroutine. enq/qw are set only with spans enabled: the
// worker folds this group's queue wait into qw as a running max (groups of
// one batch wait concurrently, so the batch's queue-wait stage is the
// longest individual wait, not the sum).
type shardTask struct {
	s     *Server
	b     *batch
	ops   []int32
	shard int
	wg    *sync.WaitGroup
	enq   time.Time
	qw    *atomic.Int64
}

// startWorkers launches one worker goroutine per shard. Each worker applies
// write groups for its shard serially, so cross-connection writes to one
// shard queue here instead of contending on the shard mutex.
func (s *Server) startWorkers(n int) {
	s.shardQ = make([]chan shardTask, n)
	for i := range s.shardQ {
		ch := make(chan shardTask, 64)
		s.shardQ[i] = ch
		s.workerWG.Add(1)
		go func() {
			defer s.workerWG.Done()
			for t := range ch {
				if t.qw != nil {
					w := int64(time.Since(t.enq))
					for {
						cur := t.qw.Load()
						if w <= cur || t.qw.CompareAndSwap(cur, w) {
							break
						}
					}
				}
				t.s.execShardGroup(t.b, t.shard, t.ops)
				t.wg.Done()
			}
		}()
	}
}

// stopWorkers closes the worker queues. Callers must guarantee no further
// dispatches (every connection goroutine has exited).
func (s *Server) stopWorkers() {
	s.workerOnce.Do(func() {
		for _, ch := range s.shardQ {
			close(ch)
		}
		s.workerWG.Wait()
	})
}

// parseResult is parseCommand's verdict for the connection loop.
type parseResult uint8

const (
	parseOK    parseResult = iota
	parseQuit              // clean client-requested close
	parseFatal             // stream can no longer be trusted; close after flush
)

// parseCommand parses one command line into the connection's batch. Set
// bodies are consumed from the stream here (they follow the command line);
// execution of everything else is deferred to the batch boundary. Protocol
// errors become pre-rendered ops so responses keep request order.
func (s *Server) parseCommand(c *conn, br *bufio.Reader, line []byte) parseResult {
	b := &c.b
	c.fields = fieldsInto(c.fields[:0], line)
	if len(c.fields) == 0 {
		s.m.protoErrors.Inc()
		b.addMsg(respError)
		return parseOK
	}
	switch string(c.fields[0]) {
	case "get":
		s.parseGet(c, false)
	case "gets":
		s.parseGet(c, true)
	case "set":
		return s.parseSet(c, br)
	case "delete":
		s.parseDelete(c)
	case "stats":
		s.m.other.Inc()
		b.ops = append(b.ops, op{kind: opStats})
		// stats must observe every earlier op's effect and none of any
		// later one: close the batch so it renders last over a fully
		// applied backend.
		s.execBatch(c)
	case "version":
		s.m.other.Inc()
		b.ops = append(b.ops, op{kind: opVersion})
	case "quit":
		s.m.other.Inc()
		return parseQuit
	default:
		s.m.other.Inc()
		s.m.protoErrors.Inc()
		b.addMsg(respError)
	}
	if len(b.ops) >= maxBatchOps || b.bodyBytes >= maxBatchBody {
		s.execBatch(c)
	}
	return parseOK
}

// parseGet queues a get/gets over one or more keys. Keys are validated
// before anything is queued so an error response is never spliced into a
// data stream.
func (s *Server) parseGet(c *conn, withCas bool) {
	b := &c.b
	keys := c.fields[1:]
	if len(keys) == 0 {
		s.m.protoErrors.Inc()
		b.addMsg(respError)
		return
	}
	for _, k := range keys {
		if !validKey(k) {
			s.m.protoErrors.Inc()
			b.addMsg(msgBadKey)
			return
		}
	}
	k0 := len(b.keys)
	for _, k := range keys {
		b.keys = append(b.keys, string(k))
	}
	b.ops = append(b.ops, op{kind: opGet, withCas: withCas, k0: k0, k1: len(b.keys)})
}

// parseSet consumes "set <key> <flags> <exptime> <bytes> [noreply]" plus its
// data chunk. The bytes field is parsed first: without it the stream cannot
// be resynced past the body, so a bad length is fatal; every other malformed
// field is reported after the body has been consumed and the connection
// survives. The value is stored with its 4-byte flags prefix written in
// place, so the body is read exactly once into its final buffer.
func (s *Server) parseSet(c *conn, br *bufio.Reader) parseResult {
	b := &c.b
	args := c.fields[1:]
	s.m.sets.Inc()
	if len(args) < 4 || len(args) > 5 {
		s.m.protoErrors.Inc()
		b.addMsg(msgBadFormat)
		return parseFatal
	}
	n64, lenErr := parseUintBytes(args[3], 31)
	if lenErr != nil {
		s.m.protoErrors.Inc()
		b.addMsg(msgBadLen)
		return parseFatal
	}
	n := int(n64)
	noreply := len(args) == 5 && string(args[4]) == "noreply"
	// The remaining fields must come off the line NOW: args alias the
	// reader's internal buffer, and the body read below overwrites it. The
	// resulting errors are still reported after the body is consumed, the
	// classic precedence.
	key := string(args[0])
	flags, ferr := parseUintBytes(args[1], 32)
	exptime, eerr := parseIntBytes(args[2])
	badFmt := !validKey(args[0]) || ferr != nil || eerr != nil || (len(args) == 5 && !noreply)

	if n > s.cfg.MaxValueBytes {
		// Swallow the declared body to stay in sync, then refuse (memcached
		// keeps the connection for oversized objects).
		ok, badChunk := s.discardBody(c, br, int64(n))
		if !ok {
			if badChunk {
				s.m.protoErrors.Inc()
				b.addMsg(msgBadChunk)
			}
			return parseFatal
		}
		s.m.protoErrors.Inc()
		if !noreply {
			b.addMsg(msgTooLarge)
		}
		return parseOK
	}
	body := make([]byte, 4+n+2)
	if s.readBody(c, br, body[4:]) != nil {
		return parseFatal // transport failure mid-body; nothing sane to reply
	}
	if body[4+n] != '\r' || body[4+n+1] != '\n' {
		s.m.protoErrors.Inc()
		b.addMsg(msgBadChunk)
		return parseFatal
	}

	if badFmt {
		s.m.protoErrors.Inc()
		if !noreply {
			b.addMsg(msgBadFormat)
		}
		return parseOK
	}
	binary.BigEndian.PutUint32(body, uint32(flags))
	o := op{kind: opSet, noreply: noreply, key: key, body: body[:4+n]}
	switch {
	case exptime == 0:
		o.setMode = setStore
	case exptime < 0:
		o.setMode = setDelete
	case exptime <= relativeExpCutoff:
		o.setMode = setTTL
		o.ttl = time.Duration(exptime) * time.Second
	default:
		// Absolute unix exptime: convert to a backend-clock deadline now,
		// but resolve the remaining TTL at execution time on the owning
		// shard's clock (execTTLAbs) so it lands on the same clock as
		// relative TTLs.
		if deadline := s.expDeadline(exptime); deadline <= 0 {
			o.setMode = setDelete
		} else {
			o.setMode = setTTLAbs
			o.ttl = deadline
		}
	}
	b.bodyBytes += len(body)
	b.ops = append(b.ops, o)
	if len(b.ops) >= maxBatchOps || b.bodyBytes >= maxBatchBody {
		s.execBatch(c)
	}
	return parseOK
}

// parseDelete queues "delete <key> [noreply]".
func (s *Server) parseDelete(c *conn) {
	b := &c.b
	args := c.fields[1:]
	s.m.deletes.Inc()
	noreply := len(args) == 2 && string(args[1]) == "noreply"
	if len(args) < 1 || len(args) > 2 || (len(args) == 2 && !noreply) || !validKey(args[0]) {
		s.m.protoErrors.Inc()
		if !noreply {
			b.addMsg(msgBadFormat)
		}
		return
	}
	b.ops = append(b.ops, op{kind: opDel, noreply: noreply, key: string(args[0])})
}

// execBatch applies every accumulated op to the backend and renders the
// responses, in request order, into the connection's response writer. The
// writer is flushed separately (at the pipeline batch boundary), so calling
// this mid-stream to cap batch memory does not cost an extra flush.
func (s *Server) execBatch(c *conn) {
	b := &c.b
	if len(b.ops) == 0 {
		return
	}
	started := time.Now()
	// Size the per-key result slots. Every slot is owned and written by
	// exactly one get op, so no zeroing is needed.
	if cap(b.vals) < len(b.keys) {
		b.vals = make([][]byte, len(b.keys))
		b.hits = make([]bool, len(b.keys))
		b.errs = make([]error, len(b.keys))
	} else {
		b.vals = b.vals[:len(b.keys)]
		b.hits = b.hits[:len(b.keys)]
		b.errs = b.errs[:len(b.keys)]
	}
	if s.sharded != nil {
		s.execPhases(c, b)
	} else {
		s.execInline(b)
	}
	lat := time.Since(started)
	if s.spans != nil {
		s.spanExec(c, b, lat)
	}
	s.renderBatch(c, b, lat)
	b.reset()
}

// spanExec folds one executed batch into the connection's span. The
// execution window splits as queue_wait (longest shard-group queue wait,
// recorded by the workers into c.qwait) plus exec (everything else), so
// queue_wait + exec always equals the batch's server_request_latency
// observation exactly. The first op of the pipeline batch supplies the
// slow-request exemplar identity.
func (s *Server) spanExec(c *conn, b *batch, lat time.Duration) {
	qw := time.Duration(c.qwait.Swap(0))
	if qw > lat {
		qw = lat
	}
	c.sp.Add(obs.StageQueueWait, qw)
	c.sp.Add(obs.StageExec, lat-qw)
	c.spExec += lat
	if c.spanOps == 0 {
		o := &b.ops[0]
		switch o.kind {
		case opGet:
			c.spanVerb = "get"
			c.spanKey = b.keys[o.k0]
			if s.sharded != nil {
				c.spanShard = int32(s.sharded.ShardFor(c.spanKey))
			}
		case opSet:
			c.spanVerb = "set"
			c.spanKey = o.key
			c.spanShard = o.shard
		case opDel:
			c.spanVerb = "delete"
			c.spanKey = o.key
			c.spanShard = o.shard
		default:
			c.spanVerb = "other"
		}
	}
	c.spanOps += len(b.ops)
}

// finishSpan settles the connection's span at the pipeline batch boundary
// (after the flush). Outside a span-enabled server, or when nothing
// executed since the last settle, it is a no-op.
func (s *Server) finishSpan(c *conn) {
	rec := s.spans
	if rec == nil || c.spanOps == 0 {
		return
	}
	rec.Settle(&c.sp, rec.SampleNow(), obs.SlowRequest{
		Verb:     c.spanVerb,
		Key:      c.spanKey,
		Shard:    int(c.spanShard),
		BatchOps: c.spanOps,
	})
	c.sp.Reset()
	c.spanOps = 0
	c.spanVerb, c.spanKey, c.spanShard = "", "", 0
}

// execInline serves a non-sharded backend: ops run one at a time in request
// order, exactly the classic serving path.
func (s *Server) execInline(b *batch) {
	be := s.cfg.Backend
	for i := range b.ops {
		o := &b.ops[i]
		switch o.kind {
		case opGet:
			if s.multi != nil && o.k1-o.k0 > 1 {
				s.multi.GetMulti(b.keys[o.k0:o.k1], b.vals[o.k0:o.k1], b.hits[o.k0:o.k1], b.errs[o.k0:o.k1])
				break
			}
			for j := o.k0; j < o.k1; j++ {
				b.vals[j], b.hits[j], b.errs[j] = be.Get(b.keys[j])
			}
		case opSet:
			switch o.setMode {
			case setStore:
				o.err = be.Set(o.key, o.body)
			case setTTL:
				o.err = be.SetWithTTL(o.key, o.body, o.ttl)
			case setTTLAbs:
				if ttl := o.ttl - s.backendNow(o.key); ttl <= 0 {
					be.Delete(o.key)
				} else {
					o.err = be.SetWithTTL(o.key, o.body, ttl)
				}
			case setDelete:
				be.Delete(o.key)
			}
		case opDel:
			o.found = be.Delete(o.key)
		}
	}
}

// execPhases executes a batch against a sharded backend. The batch is split
// into phases at in-batch data dependencies — a get of a key written earlier
// in the phase (read-after-write) or a write of a key an earlier get read
// (write-after-read) starts a new phase — so ops within one phase are
// conflict-free and can run concurrently while batch-order semantics
// survive. Write-after-write on one key needs no split: same key means same
// shard, and a shard group applies its ops in request order.
func (s *Server) execPhases(c *conn, b *batch) {
	w, r := c.phaseW, c.phaseR
	clear(w)
	clear(r)
	p0 := 0
	for i := range b.ops {
		o := &b.ops[i]
		switch o.kind {
		case opGet:
			conflict := false
			for j := o.k0; j < o.k1; j++ {
				if _, ok := w[b.keys[j]]; ok {
					conflict = true
					break
				}
			}
			if conflict {
				s.execPhase(c, b, p0, i)
				p0 = i
				clear(w)
				clear(r)
			}
			for j := o.k0; j < o.k1; j++ {
				r[b.keys[j]] = struct{}{}
			}
		case opSet, opDel:
			if _, ok := r[o.key]; ok {
				s.execPhase(c, b, p0, i)
				p0 = i
				clear(w)
				clear(r)
			}
			w[o.key] = struct{}{}
		}
	}
	s.execPhase(c, b, p0, len(b.ops))
}

// execPhase runs one conflict-free phase: write ops are grouped by shard and
// each group applied in one critical section (the shard's write lock is
// taken at most once per phase), gets run on the connection goroutine over
// the lock-free read path, overlapping the workers' writes.
func (s *Server) execPhase(c *conn, b *batch, lo, hi int) {
	if lo >= hi {
		return
	}
	sb := s.sharded
	active := c.active[:0]
	hasGets := false
	for i := lo; i < hi; i++ {
		o := &b.ops[i]
		switch o.kind {
		case opGet:
			hasGets = true
		case opSet, opDel:
			sh := sb.ShardFor(o.key)
			o.shard = int32(sh)
			if len(c.groups[sh]) == 0 {
				active = append(active, sh)
			}
			c.groups[sh] = append(c.groups[sh], int32(i))
		}
	}
	// With nothing to overlap against, the last (or only) group runs on
	// this goroutine — one channel round trip saved; the lock is still
	// taken once for the whole group.
	inlineGroup := -1
	dispatched := 0
	if len(active) > 0 {
		if !hasGets {
			inlineGroup = active[len(active)-1]
		}
		var enq time.Time
		var qw *atomic.Int64
		if s.spans != nil {
			enq = time.Now()
			qw = &c.qwait
		}
		for _, sh := range active {
			if sh == inlineGroup {
				continue
			}
			c.wg.Add(1)
			s.shardQ[sh] <- shardTask{s: s, b: b, ops: c.groups[sh], shard: sh, wg: &c.wg, enq: enq, qw: qw}
			dispatched++
		}
	}
	if inlineGroup >= 0 {
		s.execShardGroup(b, inlineGroup, c.groups[inlineGroup])
	}
	if hasGets {
		be := s.cfg.Backend
		for i := lo; i < hi; i++ {
			o := &b.ops[i]
			if o.kind != opGet {
				continue
			}
			for j := o.k0; j < o.k1; j++ {
				b.vals[j], b.hits[j], b.errs[j] = be.Get(b.keys[j])
			}
		}
	}
	if dispatched > 0 {
		c.wg.Wait()
	}
	s.m.dispatchPhases.Inc()
	s.m.dispatchGroups.Add(uint64(len(active)))
	for _, sh := range active {
		c.groups[sh] = c.groups[sh][:0]
	}
	c.active = active[:0]
}

// execShardGroup applies one shard's write group in a single critical
// section, in request order.
func (s *Server) execShardGroup(b *batch, shard int, idxs []int32) {
	err := s.sharded.ExecShard(shard, func(eng *cache.Cache) {
		for _, i := range idxs {
			o := &b.ops[i]
			switch o.kind {
			case opSet:
				switch o.setMode {
				case setStore:
					// o.body is a fresh per-request allocation the server
					// never touches again — hand it to the engine so the
					// read-index publish skips its defensive copy.
					o.err = eng.SetOwned(o.key, o.body, 0)
				case setTTL:
					o.err = eng.SetTTLOwned(o.key, o.body, 0, o.ttl)
				case setTTLAbs:
					if ttl := o.ttl - eng.Clock().Now(); ttl <= 0 {
						eng.Delete(o.key)
					} else {
						o.err = eng.SetTTLOwned(o.key, o.body, 0, ttl)
					}
				case setDelete:
					eng.Delete(o.key)
				}
			case opDel:
				o.found = eng.Delete(o.key)
			}
		}
	})
	if err != nil {
		// Backend closed: sets report the error, deletes report not-found —
		// the same answers the per-op Backend methods give.
		for _, i := range idxs {
			if o := &b.ops[i]; o.kind == opSet && o.err == nil {
				o.err = err
			}
		}
	}
}

// renderBatch writes every op's response, in request order, into the
// response ring, and settles the per-request metrics. Every request in a
// batch observes the batch's execution latency — the client-visible shape
// of pipelined serving.
func (s *Server) renderBatch(c *conn, b *batch, lat time.Duration) {
	w := &c.rw
	m := &s.m
	m.batches.Inc()
	m.batchOps.Add(uint64(len(b.ops)))
	m.observeBatchSize(len(b.ops))
	slow := s.cfg.SlowThreshold > 0 && lat >= s.cfg.SlowThreshold
	var nGet, nSet, nDel int
	for i := range b.ops {
		o := &b.ops[i]
		switch o.kind {
		case opGet:
			nGet++
		case opSet:
			nSet++
		case opDel:
			nDel++
		}
		if slow {
			m.slowRequests.Inc()
			s.cfg.Tracer.Emit(obs.Event{
				T:      time.Since(s.start),
				Type:   obs.EvSlowRequest,
				Zone:   -1,
				Region: -1,
				Bytes:  int64(lat),
			})
		}
		switch o.kind {
		case opGet:
			s.renderGet(w, b, o)
		case opSet:
			if o.noreply {
				break
			}
			if o.err != nil {
				writeServerError(w, o.err.Error())
			} else {
				w.str(respStored)
			}
		case opDel:
			if o.noreply {
				break
			}
			if o.found {
				w.str(respDeleted)
			} else {
				w.str(respNotFound)
			}
		case opStats:
			s.handleStats(w)
		case opVersion:
			w.str("VERSION " + Version + crlf)
		case opMsg:
			w.str(o.msg)
		}
	}
	// Every request in a batch observes the batch's execution latency — the
	// client-visible shape of pipelined serving — batched as one histogram
	// lock round trip per verb instead of one per op.
	m.reqLatency.ObserveN(lat, len(b.ops))
	m.reqLatVerb[verbGet].ObserveN(lat, nGet)
	m.reqLatVerb[verbSet].ObserveN(lat, nSet)
	m.reqLatVerb[verbDelete].ObserveN(lat, nDel)
	s.sloGet.ObserveN(lat, nGet)
	s.sloSet.ObserveN(lat, nSet)
	s.sloDel.ObserveN(lat, nDel)
}

// renderGet writes one get/gets response: VALUE blocks for the hits in
// request key order, then END. A backend error truncates the response
// (SERVER_ERROR instead of END), the classic behaviour.
func (s *Server) renderGet(w *respWriter, b *batch, o *op) {
	m := &s.m
	for j := o.k0; j < o.k1; j++ {
		m.gets.Inc()
		if b.errs[j] != nil {
			writeServerError(w, b.errs[j].Error())
			return
		}
		if !b.hits[j] {
			m.getMisses.Inc()
			continue
		}
		m.getHits.Inc()
		flags, data := decodeValue(b.vals[j])
		w.str("VALUE ")
		w.str(b.keys[j])
		w.bytec(' ')
		w.uint(uint64(flags))
		w.bytec(' ')
		w.uint(uint64(len(data)))
		if o.withCas {
			w.bytec(' ')
			w.uint(casOf(data))
		}
		w.str(crlf)
		w.bytes(data)
		w.str(crlf)
	}
	w.str(respEnd)
}

// flushResp materializes the response ring as one writev under the write
// deadline. Byte accounting is manual: the vectored write goes to the raw
// connection so net.Buffers reaches the TCPConn's writev path.
func (s *Server) flushResp(c *conn) error {
	w := &c.rw
	if w.empty() {
		// A noreply-only batch produces no bytes but still executed: the
		// span settles here all the same.
		s.finishSpan(c)
		return nil
	}
	s.m.flushes.Inc()
	w.bufs = w.bufs[:0]
	for _, seg := range w.segs {
		if seg.ext != nil {
			w.bufs = append(w.bufs, seg.ext)
		} else {
			w.bufs = append(w.bufs, w.arena[seg.off:seg.end])
		}
	}
	c.nc.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout)) //nolint:errcheck
	var t0 time.Time
	if s.spans != nil {
		t0 = time.Now()
	}
	n, err := w.bufs.WriteTo(c.nc)
	if s.spans != nil {
		c.sp.Add(obs.StageFlush, time.Since(t0))
	}
	if n > 0 {
		s.m.bytesOut.Add(uint64(n))
	}
	w.reset()
	s.finishSpan(c)
	return err
}

// fieldsInto splits line into ASCII-whitespace-separated fields appended to
// dst, allocation-free (fields alias line; copy anything that outlives it).
func fieldsInto(dst [][]byte, line []byte) [][]byte {
	i := 0
	for i < len(line) {
		for i < len(line) && asciiSpace(line[i]) {
			i++
		}
		if i >= len(line) {
			break
		}
		j := i
		for j < len(line) && !asciiSpace(line[j]) {
			j++
		}
		dst = append(dst, line[i:j])
		i = j
	}
	return dst
}

func asciiSpace(b byte) bool {
	return b == ' ' || b == '\t' || b == '\v' || b == '\f' || b == '\r'
}

// parseUintBytes parses a decimal uint of at most bits bits without
// allocating. Mirrors strconv.ParseUint's syntax/range failures for the
// inputs the protocol sees.
func parseUintBytes(p []byte, bits int) (uint64, error) {
	if len(p) == 0 || len(p) > 20 {
		return 0, strconv.ErrSyntax
	}
	var v uint64
	max := uint64(1)<<uint(bits) - 1
	for _, ch := range p {
		if ch < '0' || ch > '9' {
			return 0, strconv.ErrSyntax
		}
		v = v*10 + uint64(ch-'0')
		if v > max {
			return 0, strconv.ErrRange
		}
	}
	return v, nil
}

// parseIntBytes parses a decimal int64 without allocating.
func parseIntBytes(p []byte) (int64, error) {
	neg := false
	if len(p) > 0 && (p[0] == '-' || p[0] == '+') {
		neg = p[0] == '-'
		p = p[1:]
	}
	v, err := parseUintBytes(p, 63)
	if err != nil {
		return 0, err
	}
	if neg {
		return -int64(v), nil
	}
	return int64(v), nil
}
