package server

import (
	"strconv"
	"sync/atomic"

	"znscache/internal/obs"
	"znscache/internal/stats"
)

// metrics holds the server's own instruments. They are registered by
// reference (the obs convention), so a /metrics scrape and the stats command
// read the very same atomics the hot path increments.
type metrics struct {
	connsTotal stats.Counter // connections accepted over the lifetime
	connsOpen  atomic.Int64  // currently served connections

	gets    stats.Counter // get/gets key lookups
	sets    stats.Counter // set commands
	deletes stats.Counter // delete commands
	other   stats.Counter // stats/version/unknown commands

	getHits   stats.Counter
	getMisses stats.Counter

	bytesIn  stats.Counter // raw socket bytes read
	bytesOut stats.Counter // raw socket bytes written
	flushes  stats.Counter // response flushes (≪ ops when pipelining works)

	protoErrors  stats.Counter // malformed commands (connection may survive)
	panics       stats.Counter // recovered handler panics (always a bug)
	slowRequests stats.Counter // requests at or above SlowThreshold

	batches        stats.Counter // executed pipeline batches
	batchOps       stats.Counter // ops across all executed batches
	dispatchPhases stats.Counter // conflict-free phases executed (sharded path)
	dispatchGroups stats.Counter // shard write groups executed (sharded path)
	// batchSizes is a histogram of ops-per-batch with bucket upper bounds
	// batchSizeBounds (last bucket is +Inf): how much pipelining the serving
	// path actually sees.
	batchSizes [len(batchSizeBounds) + 1]stats.Counter

	reqLatency *stats.Histogram // wall-clock request latency, all verbs
	// reqLatVerb splits request latency by verb (indexed by verbGet/
	// verbSet/verbDelete) so the hit-path and write-path tails are
	// separable on /metrics; msg/stats/version ops count only in the
	// aggregate.
	reqLatVerb [3]*stats.Histogram
}

// reqLatVerb indices.
const (
	verbGet = iota
	verbSet
	verbDelete
)

var verbNames = [3]string{"get", "set", "delete"}

// batchSizeBounds are the inclusive upper bounds of the batch-size buckets.
var batchSizeBounds = [...]int{1, 2, 4, 8, 16, 32, 64, 128}

func (m *metrics) observeBatchSize(n int) {
	for i, b := range batchSizeBounds {
		if n <= b {
			m.batchSizes[i].Inc()
			return
		}
	}
	m.batchSizes[len(batchSizeBounds)].Inc()
}

func (m *metrics) init() {
	m.reqLatency = stats.NewHistogram()
	for i := range m.reqLatVerb {
		m.reqLatVerb[i] = stats.NewHistogram()
	}
}

// MetricsInto implements obs.MetricSource: the server's instruments register
// under server_* names with the caller's labels, alongside the cache and
// device layers sharing the registry.
func (s *Server) MetricsInto(r *obs.Registry, labels obs.Labels) {
	m := &s.m
	r.Counter("server_connections_total", "TCP connections accepted", labels, &m.connsTotal)
	r.Gauge("server_connections_open", "Currently served connections", labels,
		func() float64 { return float64(m.connsOpen.Load()) })
	r.Counter("server_ops_total", "Requests served by verb", labels.With("verb", "get"), &m.gets)
	r.Counter("server_ops_total", "Requests served by verb", labels.With("verb", "set"), &m.sets)
	r.Counter("server_ops_total", "Requests served by verb", labels.With("verb", "delete"), &m.deletes)
	r.Counter("server_ops_total", "Requests served by verb", labels.With("verb", "other"), &m.other)
	r.Counter("server_get_hits_total", "get lookups that found the key", labels, &m.getHits)
	r.Counter("server_get_misses_total", "get lookups that missed", labels, &m.getMisses)
	r.Counter("server_bytes_in_total", "Bytes read from clients", labels, &m.bytesIn)
	r.Counter("server_bytes_out_total", "Bytes written to clients", labels, &m.bytesOut)
	r.Counter("server_flushes_total", "Response flushes (one per pipelined batch)", labels, &m.flushes)
	r.Counter("server_protocol_errors_total", "Malformed client commands", labels, &m.protoErrors)
	r.Counter("server_panics_total", "Recovered request-handler panics", labels, &m.panics)
	r.Counter("server_slow_requests_total", "Requests at or above the slow threshold", labels, &m.slowRequests)
	r.Counter("server_batches_total", "Pipeline batches executed", labels, &m.batches)
	r.Counter("server_batch_ops_total", "Requests across executed batches", labels, &m.batchOps)
	r.Counter("server_dispatch_phases_total", "Conflict-free batch phases executed", labels, &m.dispatchPhases)
	r.Counter("server_dispatch_groups_total", "Shard write groups executed", labels, &m.dispatchGroups)
	for i := range m.batchSizes {
		le := "+Inf"
		if i < len(batchSizeBounds) {
			le = strconv.Itoa(batchSizeBounds[i])
		}
		r.Counter("server_batch_size_bucket", "Batch-size distribution (ops per executed batch)",
			labels.With("le", le), &m.batchSizes[i])
	}
	r.Histogram("server_request_latency", "Wall-clock request latency", labels, m.reqLatency)
	for i, h := range m.reqLatVerb {
		r.Histogram("server_request_latency", "Wall-clock request latency",
			labels.With("verb", verbNames[i]), h)
	}
	if s.cfg.Spans != nil {
		s.cfg.Spans.MetricsInto(r, labels)
	}
	if s.cfg.SLO != nil {
		s.cfg.SLO.MetricsInto(r, labels)
	}
}
