package server

import (
	"bufio"
	"encoding/binary"
	"io"
	"sort"
	"strconv"
	"time"
)

// Version is the string the version command reports.
const Version = "znscache/1.0"

// Protocol constants.
const (
	crlf         = "\r\n"
	respStored   = "STORED\r\n"
	respDeleted  = "DELETED\r\n"
	respNotFound = "NOT_FOUND\r\n"
	respEnd      = "END\r\n"
	respError    = "ERROR\r\n"

	// maxKeyLen is memcached's key limit.
	maxKeyLen = 250
	// relativeExpCutoff: exptimes up to this many seconds are relative,
	// larger ones are absolute unix times (memcached's 30-day rule).
	relativeExpCutoff = 30 * 24 * 3600
)

// handleStats serves the stats command: the server's own instruments in
// memcached's classic names, then any StatsExtra lines sorted by name.
func (s *Server) handleStats(w *respWriter) {
	m := &s.m
	writeStat(w, "uptime_seconds", strconv.FormatInt(int64(time.Since(s.start).Seconds()), 10))
	writeStat(w, "curr_connections", strconv.FormatInt(m.connsOpen.Load(), 10))
	writeStat(w, "total_connections", strconv.FormatUint(m.connsTotal.Load(), 10))
	writeStat(w, "cmd_get", strconv.FormatUint(m.gets.Load(), 10))
	writeStat(w, "cmd_set", strconv.FormatUint(m.sets.Load(), 10))
	writeStat(w, "cmd_delete", strconv.FormatUint(m.deletes.Load(), 10))
	writeStat(w, "get_hits", strconv.FormatUint(m.getHits.Load(), 10))
	writeStat(w, "get_misses", strconv.FormatUint(m.getMisses.Load(), 10))
	writeStat(w, "curr_items", strconv.Itoa(s.cfg.Backend.Len()))
	writeStat(w, "bytes_read", strconv.FormatUint(m.bytesIn.Load(), 10))
	writeStat(w, "bytes_written", strconv.FormatUint(m.bytesOut.Load(), 10))
	writeStat(w, "protocol_errors", strconv.FormatUint(m.protoErrors.Load(), 10))
	writeStat(w, "slow_requests", strconv.FormatUint(m.slowRequests.Load(), 10))
	if s.cfg.StatsExtra != nil {
		extra := s.cfg.StatsExtra()
		names := make([]string, 0, len(extra))
		for name := range extra {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			writeStat(w, name, extra[name])
		}
	}
	w.str(respEnd)
}

// readBody fills buf from the connection under the read timeout. One
// deadline expiry is retried with a fresh deadline: a shutdown poke can race
// the idle→busy transition and expire the deadline mid-body, and a request
// whose header was accepted must not be dropped for it.
func (s *Server) readBody(c *conn, br *bufio.Reader, buf []byte) error {
	read, retried := 0, false
	for read < len(buf) {
		if br.Buffered() < len(buf)-read {
			// The body is not fully buffered: the fill will touch the
			// socket, so arm the deadline. Fully-buffered bodies (the
			// pipelined common case) skip the timer update.
			c.nc.SetReadDeadline(time.Now().Add(s.cfg.ReadTimeout)) //nolint:errcheck
		}
		n, err := io.ReadFull(br, buf[read:])
		read += n
		if err == nil {
			return nil
		}
		if isTimeout(err) && !retried {
			retried = true
			continue
		}
		return err
	}
	return nil
}

// discardBody swallows an oversized declared body (plus its CRLF) without
// buffering it. ok reports whether the stream stayed in sync; badChunk
// distinguishes a present-but-corrupt terminator (report "bad data chunk")
// from a transport failure (close silently).
func (s *Server) discardBody(c *conn, br *bufio.Reader, n int64) (ok, badChunk bool) {
	c.nc.SetReadDeadline(time.Now().Add(s.cfg.ReadTimeout)) //nolint:errcheck
	if _, err := io.CopyN(io.Discard, br, n); err != nil {
		return false, false
	}
	var term [2]byte
	if s.readBody(c, br, term[:]) != nil {
		return false, false
	}
	if term[0] != '\r' || term[1] != '\n' {
		return false, true
	}
	return true, false
}

// expDeadline converts an absolute memcached exptime (> relativeExpCutoff,
// a unix time) to a deadline on the backend clock whose zero is WallBase.
// The remaining TTL is deadline − backendNow(key), resolved at execution
// time so it lands on the same clock relative TTLs already use; ≤0 means
// already expired. (The old expTTL resolved absolute exptimes against the
// wall clock at parse time, which put them on a different clock than the
// shard-simulated relative TTLs and broke same-seed replay determinism.)
func (s *Server) expDeadline(exptime int64) time.Duration {
	return time.Unix(exptime, 0).Sub(s.wallBase)
}

// backendNow reads the backend clock for key: the owning shard's simulated
// clock when the backend exposes one, else wall time since WallBase (which
// makes deadline − now identical to time.Until(exptime) for plain backends).
func (s *Server) backendNow(key string) time.Duration {
	if s.clocked != nil {
		return s.clocked.ShardNow(key)
	}
	return time.Since(s.wallBase)
}

// validKey applies memcached's key rules: 1..250 bytes, no whitespace or
// control characters.
func validKey(k []byte) bool {
	if len(k) == 0 || len(k) > maxKeyLen {
		return false
	}
	for i := 0; i < len(k); i++ {
		if k[i] <= ' ' || k[i] == 0x7f {
			return false
		}
	}
	return true
}

// encodeValue prefixes the client's opaque flags (4 bytes big-endian) onto
// the data so the cache backend stores a single byte slice per key.
func encodeValue(flags uint32, data []byte) []byte {
	v := make([]byte, 4+len(data))
	binary.BigEndian.PutUint32(v, flags)
	copy(v[4:], data)
	return v
}

// decodeValue splits a stored value back into flags and data. A value
// shorter than the prefix (only possible when the backend was populated
// outside the server) reads as flags 0.
func decodeValue(v []byte) (uint32, []byte) {
	if len(v) < 4 {
		return 0, v
	}
	return binary.BigEndian.Uint32(v), v[4:]
}

// casOf derives the gets cas token from the value bytes (FNV-1a 64): equal
// values compare equal, any modification changes the token. Content-derived
// rather than generation-derived because the backend has no version counter.
func casOf(data []byte) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, b := range data {
		h ^= uint64(b)
		h *= prime64
	}
	return h
}

func writeClientError(w *respWriter, msg string) {
	w.str("CLIENT_ERROR ")
	w.str(msg)
	w.str(crlf)
}

func writeServerError(w *respWriter, msg string) {
	w.str("SERVER_ERROR ")
	w.str(msg)
	w.str(crlf)
}

func writeStat(w *respWriter, name, value string) {
	w.str("STAT ")
	w.str(name)
	w.bytec(' ')
	w.str(value)
	w.str(crlf)
}

// writeUint renders u in decimal without fmt's reflection overhead (used by
// the client's request writer; the server side renders through respWriter).
func writeUint(bw *bufio.Writer, u uint64) {
	var tmp [20]byte
	bw.Write(strconv.AppendUint(tmp[:0], u, 10)) //nolint:errcheck
}
