package server

import (
	"bufio"
	"encoding/binary"
	"io"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Version is the string the version command reports.
const Version = "znscache/1.0"

// Protocol constants.
const (
	crlf         = "\r\n"
	respStored   = "STORED\r\n"
	respDeleted  = "DELETED\r\n"
	respNotFound = "NOT_FOUND\r\n"
	respEnd      = "END\r\n"
	respError    = "ERROR\r\n"

	// maxKeyLen is memcached's key limit.
	maxKeyLen = 250
	// relativeExpCutoff: exptimes up to this many seconds are relative,
	// larger ones are absolute unix times (memcached's 30-day rule).
	relativeExpCutoff = 30 * 24 * 3600
)

// dispatch parses and serves one command line. It reports quit (clean
// client-requested close) and fatal (the stream can no longer be trusted —
// close this connection after flushing whatever error response was written).
func (s *Server) dispatch(c *conn, br *bufio.Reader, bw *bufio.Writer, line []byte) (quit, fatal bool) {
	args := strings.Fields(string(line))
	if len(args) == 0 {
		s.m.protoErrors.Inc()
		bw.WriteString(respError) //nolint:errcheck
		return false, false
	}
	switch args[0] {
	case "get":
		s.handleGet(bw, args[1:], false)
	case "gets":
		s.handleGet(bw, args[1:], true)
	case "set":
		return false, s.handleSet(c, br, bw, args[1:])
	case "delete":
		s.handleDelete(bw, args[1:])
	case "stats":
		s.m.other.Inc()
		s.handleStats(bw)
	case "version":
		s.m.other.Inc()
		bw.WriteString("VERSION " + Version + crlf) //nolint:errcheck
	case "quit":
		s.m.other.Inc()
		return true, false
	default:
		s.m.other.Inc()
		s.m.protoErrors.Inc()
		bw.WriteString(respError) //nolint:errcheck
	}
	return false, false
}

// handleGet serves get/gets over one or more keys. Keys are validated before
// any VALUE output so an error response is never spliced into a data stream.
func (s *Server) handleGet(bw *bufio.Writer, keys []string, withCas bool) {
	if len(keys) == 0 {
		s.m.protoErrors.Inc()
		bw.WriteString(respError) //nolint:errcheck
		return
	}
	for _, k := range keys {
		if !validKey(k) {
			s.m.protoErrors.Inc()
			writeClientError(bw, "bad key")
			return
		}
	}
	for _, k := range keys {
		s.m.gets.Inc()
		v, ok, err := s.cfg.Backend.Get(k)
		if err != nil {
			writeServerError(bw, err.Error())
			return
		}
		if !ok {
			s.m.getMisses.Inc()
			continue
		}
		s.m.getHits.Inc()
		flags, data := decodeValue(v)
		bw.WriteString("VALUE ") //nolint:errcheck
		bw.WriteString(k)        //nolint:errcheck
		bw.WriteByte(' ')        //nolint:errcheck
		writeUint(bw, uint64(flags))
		bw.WriteByte(' ') //nolint:errcheck
		writeUint(bw, uint64(len(data)))
		if withCas {
			bw.WriteByte(' ') //nolint:errcheck
			writeUint(bw, casOf(data))
		}
		bw.WriteString(crlf) //nolint:errcheck
		bw.Write(data)       //nolint:errcheck
		bw.WriteString(crlf) //nolint:errcheck
	}
	bw.WriteString(respEnd) //nolint:errcheck
}

// handleSet serves "set <key> <flags> <exptime> <bytes> [noreply]" followed
// by a <bytes>-long data chunk and CRLF. The bytes field is parsed first:
// without it the stream cannot be resynced past the body, so a bad length is
// fatal to the connection; every other malformed field is reported after the
// body has been consumed and the connection survives.
func (s *Server) handleSet(c *conn, br *bufio.Reader, bw *bufio.Writer, args []string) (fatal bool) {
	s.m.sets.Inc()
	if len(args) < 4 || len(args) > 5 {
		s.m.protoErrors.Inc()
		writeClientError(bw, "bad command line format")
		return true
	}
	n, err := strconv.ParseUint(args[3], 10, 31)
	if err != nil {
		s.m.protoErrors.Inc()
		writeClientError(bw, "bad data chunk length")
		return true
	}
	noreply := len(args) == 5 && args[4] == "noreply"

	if int(n) > s.cfg.MaxValueBytes {
		// Swallow the declared body to stay in sync, then refuse (memcached
		// keeps the connection for oversized objects).
		if !s.discardBody(c, br, bw, int64(n)) {
			return true
		}
		s.m.protoErrors.Inc()
		if !noreply {
			writeServerError(bw, "object too large for cache")
		}
		return false
	}
	body := make([]byte, int(n)+2)
	if s.readBody(c, br, body) != nil {
		return true // transport failure mid-body; nothing sane to reply
	}
	if body[n] != '\r' || body[n+1] != '\n' {
		s.m.protoErrors.Inc()
		writeClientError(bw, "bad data chunk")
		return true
	}
	data := body[:n]

	key := args[0]
	flags, ferr := strconv.ParseUint(args[1], 10, 32)
	exptime, eerr := strconv.ParseInt(args[2], 10, 64)
	if !validKey(key) || ferr != nil || eerr != nil || (len(args) == 5 && !noreply) {
		s.m.protoErrors.Inc()
		if !noreply {
			writeClientError(bw, "bad command line format")
		}
		return false
	}

	var serr error
	switch {
	case exptime == 0:
		serr = s.cfg.Backend.Set(key, encodeValue(uint32(flags), data))
	case exptime < 0:
		// Already expired: memcached stores it invisible; deleting any
		// previous value is observably identical.
		s.cfg.Backend.Delete(key)
	default:
		ttl := expTTL(exptime)
		if ttl <= 0 {
			s.cfg.Backend.Delete(key)
		} else {
			serr = s.cfg.Backend.SetWithTTL(key, encodeValue(uint32(flags), data), ttl)
		}
	}
	if serr != nil {
		if !noreply {
			writeServerError(bw, serr.Error())
		}
		return false
	}
	if !noreply {
		bw.WriteString(respStored) //nolint:errcheck
	}
	return false
}

// handleDelete serves "delete <key> [noreply]".
func (s *Server) handleDelete(bw *bufio.Writer, args []string) {
	s.m.deletes.Inc()
	noreply := len(args) == 2 && args[1] == "noreply"
	if len(args) < 1 || len(args) > 2 || (len(args) == 2 && !noreply) || !validKey(args[0]) {
		s.m.protoErrors.Inc()
		if !noreply {
			writeClientError(bw, "bad command line format")
		}
		return
	}
	found := s.cfg.Backend.Delete(args[0])
	if noreply {
		return
	}
	if found {
		bw.WriteString(respDeleted) //nolint:errcheck
	} else {
		bw.WriteString(respNotFound) //nolint:errcheck
	}
}

// handleStats serves the stats command: the server's own instruments in
// memcached's classic names, then any StatsExtra lines sorted by name.
func (s *Server) handleStats(bw *bufio.Writer) {
	m := &s.m
	writeStat(bw, "uptime_seconds", strconv.FormatInt(int64(time.Since(s.start).Seconds()), 10))
	writeStat(bw, "curr_connections", strconv.FormatInt(m.connsOpen.Load(), 10))
	writeStat(bw, "total_connections", strconv.FormatUint(m.connsTotal.Load(), 10))
	writeStat(bw, "cmd_get", strconv.FormatUint(m.gets.Load(), 10))
	writeStat(bw, "cmd_set", strconv.FormatUint(m.sets.Load(), 10))
	writeStat(bw, "cmd_delete", strconv.FormatUint(m.deletes.Load(), 10))
	writeStat(bw, "get_hits", strconv.FormatUint(m.getHits.Load(), 10))
	writeStat(bw, "get_misses", strconv.FormatUint(m.getMisses.Load(), 10))
	writeStat(bw, "curr_items", strconv.Itoa(s.cfg.Backend.Len()))
	writeStat(bw, "bytes_read", strconv.FormatUint(m.bytesIn.Load(), 10))
	writeStat(bw, "bytes_written", strconv.FormatUint(m.bytesOut.Load(), 10))
	writeStat(bw, "protocol_errors", strconv.FormatUint(m.protoErrors.Load(), 10))
	writeStat(bw, "slow_requests", strconv.FormatUint(m.slowRequests.Load(), 10))
	if s.cfg.StatsExtra != nil {
		extra := s.cfg.StatsExtra()
		names := make([]string, 0, len(extra))
		for name := range extra {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			writeStat(bw, name, extra[name])
		}
	}
	bw.WriteString(respEnd) //nolint:errcheck
}

// readBody fills buf from the connection under the read timeout. One
// deadline expiry is retried with a fresh deadline: a shutdown poke can race
// the idle→busy transition and expire the deadline mid-body, and a request
// whose header was accepted must not be dropped for it.
func (s *Server) readBody(c *conn, br *bufio.Reader, buf []byte) error {
	read, retried := 0, false
	for read < len(buf) {
		c.nc.SetReadDeadline(time.Now().Add(s.cfg.ReadTimeout)) //nolint:errcheck
		n, err := io.ReadFull(br, buf[read:])
		read += n
		if err == nil {
			return nil
		}
		if isTimeout(err) && !retried {
			retried = true
			continue
		}
		return err
	}
	return nil
}

// discardBody swallows an oversized declared body (plus its CRLF) without
// buffering it, reporting whether the stream stayed in sync.
func (s *Server) discardBody(c *conn, br *bufio.Reader, bw *bufio.Writer, n int64) bool {
	c.nc.SetReadDeadline(time.Now().Add(s.cfg.ReadTimeout)) //nolint:errcheck
	if _, err := io.CopyN(io.Discard, br, n); err != nil {
		return false
	}
	var term [2]byte
	if s.readBody(c, br, term[:]) != nil {
		return false
	}
	if term[0] != '\r' || term[1] != '\n' {
		s.m.protoErrors.Inc()
		writeClientError(bw, "bad data chunk")
		return false
	}
	return true
}

// expTTL converts a positive memcached exptime to a duration: values up to
// 30 days are relative seconds, larger ones absolute unix times (≤0 result
// means already expired). Relative TTLs land on the owning shard's simulated
// clock; absolute ones are measured against the wall clock here.
func expTTL(exptime int64) time.Duration {
	if exptime <= relativeExpCutoff {
		return time.Duration(exptime) * time.Second
	}
	return time.Until(time.Unix(exptime, 0))
}

// validKey applies memcached's key rules: 1..250 bytes, no whitespace or
// control characters.
func validKey(k string) bool {
	if len(k) == 0 || len(k) > maxKeyLen {
		return false
	}
	for i := 0; i < len(k); i++ {
		if k[i] <= ' ' || k[i] == 0x7f {
			return false
		}
	}
	return true
}

// encodeValue prefixes the client's opaque flags (4 bytes big-endian) onto
// the data so the cache backend stores a single byte slice per key.
func encodeValue(flags uint32, data []byte) []byte {
	v := make([]byte, 4+len(data))
	binary.BigEndian.PutUint32(v, flags)
	copy(v[4:], data)
	return v
}

// decodeValue splits a stored value back into flags and data. A value
// shorter than the prefix (only possible when the backend was populated
// outside the server) reads as flags 0.
func decodeValue(v []byte) (uint32, []byte) {
	if len(v) < 4 {
		return 0, v
	}
	return binary.BigEndian.Uint32(v), v[4:]
}

// casOf derives the gets cas token from the value bytes (FNV-1a 64): equal
// values compare equal, any modification changes the token. Content-derived
// rather than generation-derived because the backend has no version counter.
func casOf(data []byte) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, b := range data {
		h ^= uint64(b)
		h *= prime64
	}
	return h
}

func writeClientError(bw *bufio.Writer, msg string) {
	bw.WriteString("CLIENT_ERROR " + msg + crlf) //nolint:errcheck
}

func writeServerError(bw *bufio.Writer, msg string) {
	bw.WriteString("SERVER_ERROR " + msg + crlf) //nolint:errcheck
}

func writeStat(bw *bufio.Writer, name, value string) {
	bw.WriteString("STAT " + name + " " + value + crlf) //nolint:errcheck
}

// writeUint renders u in decimal without fmt's reflection overhead — the
// VALUE header is the hottest write in the server.
func writeUint(bw *bufio.Writer, u uint64) {
	var tmp [20]byte
	bw.Write(strconv.AppendUint(tmp[:0], u, 10)) //nolint:errcheck
}
