package server

import (
	"testing"
	"time"

	"znscache/internal/workload"
)

func TestLoadgenClosedLoop(t *testing.T) {
	b := newMapBackend()
	s := startServer(t, Config{Backend: b})

	res, err := Run(LoadConfig{
		Addr:       s.Addr(),
		Conns:      4,
		Pipeline:   8,
		Ops:        2000,
		Keys:       512,
		Seed:       7,
		FillOnMiss: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Mode != "closed" {
		t.Fatalf("Mode = %q", res.Mode)
	}
	if res.Ops < 2000 {
		t.Fatalf("Ops = %d, want >= 2000 (budget plus trailing fills)", res.Ops)
	}
	if res.Errors != 0 {
		t.Fatalf("Errors = %d", res.Errors)
	}
	if res.Gets == 0 || res.Sets == 0 || res.Deletes == 0 {
		t.Fatalf("mix incomplete: gets=%d sets=%d deletes=%d", res.Gets, res.Sets, res.Deletes)
	}
	if res.Hits+res.Misses != res.Gets {
		t.Fatalf("hits+misses=%d, gets=%d", res.Hits+res.Misses, res.Gets)
	}
	// Read-through fills make the hot keys stick: with 512 keys and zipf
	// skew there must be both fills and subsequent hits.
	if res.Fills == 0 || res.Hits == 0 {
		t.Fatalf("fills=%d hits=%d; read-through fill not working", res.Fills, res.Hits)
	}
	if res.AchievedQPS <= 0 || res.Elapsed <= 0 {
		t.Fatalf("AchievedQPS=%v Elapsed=%v", res.AchievedQPS, res.Elapsed)
	}
	if res.Latency.Count == 0 || res.Latency.P99 < res.Latency.P50 {
		t.Fatalf("latency snapshot broken: %+v", res.Latency)
	}
	if hr := res.HitRatio(); hr <= 0 || hr >= 1 {
		t.Fatalf("HitRatio = %v", hr)
	}
}

func TestLoadgenOpenLoop(t *testing.T) {
	b := newMapBackend()
	s := startServer(t, Config{Backend: b})

	const target = 2000.0
	res, err := Run(LoadConfig{
		Addr:      s.Addr(),
		Conns:     2,
		Pipeline:  4,
		Duration:  500 * time.Millisecond,
		TargetQPS: target,
		Keys:      256,
		Seed:      11,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Mode != "open" || res.TargetQPS != target {
		t.Fatalf("Mode=%q TargetQPS=%v", res.Mode, res.TargetQPS)
	}
	if res.Ops == 0 || res.Errors != 0 {
		t.Fatalf("Ops=%d Errors=%d", res.Ops, res.Errors)
	}
	// The schedule should hold the rate well below the closed-loop ceiling:
	// a loopback map server runs far above 2k QPS, so achieving within
	// ±60% of target means the pacing actually paced.
	if res.AchievedQPS > target*1.6 {
		t.Fatalf("open loop overshot: achieved %.0f QPS, target %.0f", res.AchievedQPS, target)
	}
	if res.AchievedQPS < target*0.4 {
		t.Fatalf("open loop undershot: achieved %.0f QPS, target %.0f", res.AchievedQPS, target)
	}
}

// TestLoadgenDialError pins the error path: an unreachable server reports a
// dial failure rather than an empty result.
func TestLoadgenDialError(t *testing.T) {
	if _, err := Run(LoadConfig{Addr: "127.0.0.1:1", Ops: 10, Conns: 1}); err == nil {
		t.Fatal("Run against a dead address succeeded")
	}
}

func TestLoadgenValueDist(t *testing.T) {
	b := newMapBackend()
	s := startServer(t, Config{Backend: b})

	dist, err := workload.ParseSizeDist("pareto:1.2:1024:262144")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(LoadConfig{
		Addr:       s.Addr(),
		Conns:      2,
		Pipeline:   8,
		Ops:        1500,
		Keys:       256,
		Seed:       11,
		FillOnMiss: true,
		ValueDist:  dist,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 {
		t.Fatalf("Errors = %d", res.Errors)
	}
	if res.Sets == 0 {
		t.Fatal("no sets completed")
	}
	if len(res.ValueSizeBuckets) == 0 {
		t.Fatal("ValueSizeBuckets empty")
	}
	var total uint64
	for bkt, c := range res.ValueSizeBuckets {
		if bkt < 1024 || bkt > 262144 {
			t.Errorf("bucket %d outside the distribution's [1024, 262144] bounds", bkt)
		}
		total += c
	}
	if total != res.Sets {
		t.Errorf("bucket counts sum to %d, want Sets = %d", total, res.Sets)
	}
	// A Pareto over a 256x span must land in more than one pow2 bucket.
	if len(res.ValueSizeBuckets) < 3 {
		t.Errorf("only %d distinct buckets; heavy tail not expressed: %v",
			len(res.ValueSizeBuckets), res.ValueSizeBuckets)
	}
}
