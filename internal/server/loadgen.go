package server

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"znscache/internal/cache"
	"znscache/internal/stats"
	"znscache/internal/workload"
)

// LoadConfig parameterizes a load-generation run against a cacheserver.
type LoadConfig struct {
	// Addr is the cacheserver address. Required.
	Addr string
	// Conns is the number of concurrent connections (default 8).
	Conns int
	// Pipeline is the number of requests in flight per connection — each
	// batch is written in one flush and its responses read together
	// (default 8; 1 disables pipelining).
	Pipeline int
	// Ops is the total request budget for the closed loop. When 0 the run
	// is time-bounded by Duration instead.
	Ops uint64
	// Duration bounds a time-based run (default 3s when Ops is 0).
	Duration time.Duration
	// TargetQPS > 0 selects the open loop: batches are launched on a fixed
	// schedule at this aggregate rate, and latency is measured from each
	// batch's scheduled time, so queueing delay when the server falls
	// behind is charged to the server (no coordinated omission).
	TargetQPS float64
	// Keys is the key-space size (default 64k).
	Keys int64
	// Theta is the zipf skew (default 0.99).
	Theta float64
	// GetPct/SetPct/DelPct is the op mix (default 50/30/20, the bc mix).
	GetPct, SetPct, DelPct int
	// ValueSizes/ValueWeights describe the object-size distribution
	// (defaults follow workload.BCConfig).
	ValueSizes   []int
	ValueWeights []int
	// ValueDist, when set, replaces ValueSizes/ValueWeights with a
	// continuous size distribution (e.g. a bounded Pareto for CDN-style
	// heavy-tailed values). The payload template is sized to its MaxLen.
	ValueDist workload.SizeDist
	// Seed decorrelates per-connection generators (splitmix64-derived).
	Seed uint64
	// FillOnMiss inserts the object after a get miss (read-through fill,
	// how CacheBench drives a cache). Fills ride in the next batch.
	FillOnMiss bool
	// Exptime is sent with every set: ≤ 30 days is a relative TTL in
	// seconds, larger values are absolute unix times (memcached semantics).
	// Zero stores without expiry.
	Exptime int64
	// Multiget groups up to N consecutive gets from the workload stream into
	// one multi-key "get k1 k2 ..." request. ≤ 1 disables grouping and every
	// get goes out as its own command. Grouping reduces parse overhead and
	// lets the server serve the whole group from one read pass.
	Multiget int
	// Progress > 0 samples the run into intervals of this length: each
	// interval's throughput and interval-local p50/p99 are appended to
	// LoadResult.Timeline, and a one-line readout is written to ProgressW as
	// the run goes. Zero disables both (no interval histogram is maintained).
	Progress time.Duration
	// ProgressW receives the periodic readout lines; nil keeps the timeline
	// but prints nothing.
	ProgressW io.Writer
}

func (c *LoadConfig) fillDefaults() {
	if c.Conns <= 0 {
		c.Conns = 8
	}
	if c.Pipeline <= 0 {
		c.Pipeline = 8
	}
	if c.Ops == 0 && c.Duration <= 0 {
		c.Duration = 3 * time.Second
	}
	if c.Keys <= 0 {
		c.Keys = 64 << 10
	}
}

// LoadResult is one run's outcome. Latencies are wall-clock request (batch
// round-trip) times; every request in a batch observes the batch latency.
type LoadResult struct {
	Mode            string // "closed" or "open"
	Conns, Pipeline int
	TargetQPS       float64

	Ops     uint64 // requests sent (including fills)
	Gets    uint64
	Sets    uint64
	Deletes uint64
	Hits    uint64
	Misses  uint64
	Fills   uint64 // read-through fills issued after misses
	Errors  uint64 // transport failures and server-reported error replies

	Elapsed     time.Duration
	AchievedQPS float64
	Latency     stats.HistSnapshot

	// Multiget echoes LoadConfig.Multiget (0/1 when grouping was off).
	Multiget int
	// GetBatchSizes counts issued get commands by the number of keys they
	// carried: GetBatchSizes[n] multi-key gets went out with n keys each
	// (n == 1 means a plain single-key get). Empty when no gets were sent.
	GetBatchSizes map[int]uint64

	// ValueSizeBuckets histograms the value sizes of acknowledged sets
	// (fills included) into power-of-two buckets: ValueSizeBuckets[b]
	// counts sets whose payload length n satisfied b/2 < n <= b. Under a
	// heavy-tailed -valdist this is how the report shows the size mix the
	// server actually stored. Empty when no sets completed.
	ValueSizeBuckets map[int]uint64

	// Timeline holds one entry per LoadConfig.Progress interval (nil when
	// progress sampling was off). Intervals are disjoint: each entry's
	// latency percentiles cover only the requests completed in that window,
	// so the series shows warmup, GC stalls, and saturation over the run in
	// a way the whole-run histogram cannot.
	Timeline []IntervalStat
}

// IntervalStat is one progress interval's headline numbers.
type IntervalStat struct {
	// T is the interval's end, measured from the start of the run.
	T time.Duration
	// Ops is the number of requests completed in the interval.
	Ops uint64
	// QPS is Ops over the interval length.
	QPS float64
	// P50/P99 are interval-local request latencies.
	P50, P99 time.Duration
}

// HitRatio returns hits over get lookups (0 when no gets completed).
func (r *LoadResult) HitRatio() float64 {
	if r.Hits+r.Misses == 0 {
		return 0
	}
	return float64(r.Hits) / float64(r.Hits+r.Misses)
}

// loadCounters aggregates across connection goroutines.
type loadCounters struct {
	ops, gets, sets, deletes  atomic.Uint64
	hits, misses, fills, errs atomic.Uint64
}

// Run drives the configured load against the server and reports the result.
// Closed loop (TargetQPS == 0): every connection keeps Pipeline requests in
// flight back to back, measuring throughput at full backpressure. Open loop
// (TargetQPS > 0): batches launch on a fixed schedule and latency includes
// any time a batch spent waiting behind a slow server.
func Run(cfg LoadConfig) (*LoadResult, error) {
	if cfg.Addr == "" {
		return nil, fmt.Errorf("server: LoadConfig.Addr is required")
	}
	cfg.fillDefaults()

	// Each connection observes into its own histogram and batch-size counts,
	// merged once when the connection finishes: at high pipeline depths a
	// single shared histogram becomes the loadgen's own contention point and
	// understates the server's throughput.
	hist := stats.NewHistogram()
	sizes := make(map[int]uint64)
	valBuckets := make(map[int]uint64)
	var mergeMu sync.Mutex
	var ctr loadCounters
	var budget atomic.Int64
	budget.Store(int64(cfg.Ops))

	mode := "closed"
	var interval time.Duration
	if cfg.TargetQPS > 0 {
		mode = "open"
		// Aggregate rate split across connections, one batch per tick.
		perConn := cfg.TargetQPS / float64(cfg.Conns)
		interval = time.Duration(float64(cfg.Pipeline) / perConn * float64(time.Second))
	}

	start := time.Now()
	var deadline time.Time
	if cfg.Duration > 0 {
		deadline = start.Add(cfg.Duration)
	}

	// Progress sampling: one shared interval histogram fed with a single
	// ObserveN per batch (not per request), so the reporter's lock is taken
	// orders of magnitude less often than the per-connection histograms'.
	var prog *stats.Histogram
	var progDone chan struct{}
	var progWG sync.WaitGroup
	var timeline []IntervalStat
	if cfg.Progress > 0 {
		prog = stats.NewHistogram()
		progDone = make(chan struct{})
		progWG.Add(1)
		go func() {
			defer progWG.Done()
			timeline = progressLoop(&cfg, prog, &ctr, start, progDone)
		}()
	}

	var wg sync.WaitGroup
	var dialErr atomic.Value
	for i := 0; i < cfg.Conns; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cl, err := Dial(cfg.Addr)
			if err != nil {
				dialErr.Store(err)
				return
			}
			defer cl.Close() //nolint:errcheck
			gen := workload.NewBC(workload.BCConfig{
				Keys:         cfg.Keys,
				GetPct:       cfg.GetPct,
				SetPct:       cfg.SetPct,
				DelPct:       cfg.DelPct,
				Theta:        cfg.Theta,
				ValueSizes:   cfg.ValueSizes,
				ValueWeights: cfg.ValueWeights,
				ValueDist:    cfg.ValueDist,
				Seed:         cache.ShardSeed(cfg.Seed, i),
			})
			connHist := stats.NewHistogram()
			connSizes := make(map[int]uint64)
			connVals := make(map[int]uint64)
			runConn(cl, &cfg, gen, connHist, connSizes, connVals, prog, &ctr, &budget, deadline, start, interval, i)
			mergeMu.Lock()
			hist.Merge(connHist)
			for n, c := range connSizes {
				sizes[n] += c
			}
			for n, c := range connVals {
				valBuckets[n] += c
			}
			mergeMu.Unlock()
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if progDone != nil {
		close(progDone)
		progWG.Wait()
	}

	if err, ok := dialErr.Load().(error); ok {
		return nil, fmt.Errorf("server: loadgen dial: %w", err)
	}
	res := &LoadResult{
		Mode:      mode,
		Conns:     cfg.Conns,
		Pipeline:  cfg.Pipeline,
		TargetQPS: cfg.TargetQPS,
		Ops:       ctr.ops.Load(),
		Gets:      ctr.gets.Load(),
		Sets:      ctr.sets.Load(),
		Deletes:   ctr.deletes.Load(),
		Hits:      ctr.hits.Load(),
		Misses:    ctr.misses.Load(),
		Fills:     ctr.fills.Load(),
		Errors:    ctr.errs.Load(),
		Elapsed:   elapsed,
		Latency:   hist.Snapshot(),
		Multiget:  cfg.Multiget,
	}
	if len(sizes) > 0 {
		res.GetBatchSizes = sizes
	}
	if len(valBuckets) > 0 {
		res.ValueSizeBuckets = valBuckets
	}
	res.Timeline = timeline
	if elapsed > 0 {
		res.AchievedQPS = float64(res.Ops) / elapsed.Seconds()
	}
	return res, nil
}

// progressLoop is the interval reporter: every cfg.Progress it drains the
// shared interval histogram, derives the window's throughput from the op
// counter delta, records an IntervalStat, and (when ProgressW is set) prints
// a one-line readout. A final partial interval is flushed on shutdown when it
// saw any traffic.
func progressLoop(cfg *LoadConfig, prog *stats.Histogram, ctr *loadCounters,
	start time.Time, done chan struct{}) []IntervalStat {

	tick := time.NewTicker(cfg.Progress)
	defer tick.Stop()
	var timeline []IntervalStat
	var lastT time.Duration
	var lastOps, lastHits, lastMisses uint64
	report := func(final bool) {
		t := time.Since(start)
		ops := ctr.ops.Load()
		hits, misses := ctr.hits.Load(), ctr.misses.Load()
		snap := prog.SnapshotAndReset()
		dOps := ops - lastOps
		if final && dOps == 0 {
			return // nothing happened since the last full interval
		}
		qps := 0.0
		if dt := t - lastT; dt > 0 {
			qps = float64(dOps) / dt.Seconds()
		}
		timeline = append(timeline, IntervalStat{
			T: t, Ops: dOps, QPS: qps, P50: snap.P50, P99: snap.P99,
		})
		if cfg.ProgressW != nil {
			line := fmt.Sprintf("[loadgen] t=%-6s ops=%-8d qps=%-8.0f p50=%-9s p99=%-9s",
				t.Round(100*time.Millisecond), dOps, qps,
				snap.P50.Round(time.Microsecond), snap.P99.Round(time.Microsecond))
			if dl := (hits - lastHits) + (misses - lastMisses); dl > 0 {
				line += fmt.Sprintf(" hit=%.1f%%", float64(hits-lastHits)/float64(dl)*100)
			}
			fmt.Fprintln(cfg.ProgressW, line)
		}
		lastT, lastOps, lastHits, lastMisses = t, ops, hits, misses
	}
	for {
		select {
		case <-tick.C:
			report(false)
		case <-done:
			report(true)
			return timeline
		}
	}
}

// batchOp remembers what each queued request was, to classify its response.
type batchOp struct {
	kind   workload.OpKind
	key    string
	valLen int
	isFill bool
}

// pow2Bucket returns the power-of-two histogram bucket for a payload length:
// the smallest power of two >= n (minimum 1).
func pow2Bucket(n int) int {
	b := 1
	for b < n {
		b <<= 1
	}
	return b
}

// runConn is one connection's request loop. hist, sizes, and valBuckets are
// this connection's private accumulators; the caller merges them afterwards.
func runConn(cl *Client, cfg *LoadConfig, gen *workload.BC, hist *stats.Histogram,
	sizes map[int]uint64, valBuckets map[int]uint64, prog *stats.Histogram,
	ctr *loadCounters, budget *atomic.Int64,
	deadline, start time.Time, interval time.Duration, connIdx int) {

	// The loadgen only classifies hit/miss; fetched value bytes go straight
	// to a reused scratch buffer instead of a fresh allocation per hit.
	cl.DiscardValues = true

	// payload is a shared template the value bytes are sliced from; the
	// client's buffered writer copies on write, so sharing is safe. 16 KiB
	// covers workload.BCConfig's default size distribution.
	maxVal := 16384
	for _, sz := range cfg.ValueSizes {
		if sz > maxVal {
			maxVal = sz
		}
	}
	if cfg.ValueDist != nil {
		if m := cfg.ValueDist.MaxLen(); m > maxVal {
			maxVal = m
		}
	}
	payload := make([]byte, maxVal)
	for i := range payload {
		payload[i] = byte('a' + i%26)
	}

	// Open-loop schedule, staggered so connections don't tick in phase.
	next := start
	if interval > 0 {
		next = start.Add(interval * time.Duration(connIdx) / time.Duration(cfg.Conns))
	}

	var fills []batchOp
	batch := make([]batchOp, 0, cfg.Pipeline)
	var mkeys []string // reused key slice for multiget groups
	for {
		if !deadline.IsZero() && time.Now().After(deadline) {
			return
		}
		// Claim this batch against the op budget (closed-loop Ops mode).
		want := cfg.Pipeline
		if cfg.Ops > 0 {
			left := budget.Add(-int64(want))
			if left < 0 {
				want += int(left) // partial final batch
				if want <= 0 {
					return
				}
			}
		}

		batch = batch[:0]
		// Fills from the previous batch ride ahead of fresh ops.
		for len(fills) > 0 && len(batch) < want {
			batch = append(batch, fills[0])
			fills = fills[1:]
		}
		for len(batch) < want {
			op := gen.Next()
			batch = append(batch, batchOp{kind: op.Kind, key: op.Key, valLen: op.ValLen})
		}
		for i := 0; i < len(batch); i++ {
			b := batch[i]
			switch b.kind {
			case workload.OpGet:
				// Group this run of consecutive gets into one multi-key
				// request, up to the configured width. The server expands
				// responses per key in request order, so the index-aligned
				// classification below still matches batch[j].
				run := 1
				if cfg.Multiget > 1 {
					for i+run < len(batch) && run < cfg.Multiget &&
						batch[i+run].kind == workload.OpGet {
						run++
					}
				}
				if run == 1 {
					cl.QueueGet(b.key, false)
				} else {
					mkeys = mkeys[:0]
					for _, g := range batch[i : i+run] {
						mkeys = append(mkeys, g.key)
					}
					cl.QueueGetMulti(mkeys) // copies keys; mkeys is reusable
				}
				sizes[run]++
				i += run - 1
			case workload.OpSet:
				n := b.valLen
				if n > len(payload) {
					n = len(payload)
				}
				cl.QueueSet(b.key, 0, cfg.Exptime, payload[:n])
			case workload.OpDelete:
				cl.QueueDelete(b.key)
			}
		}

		sentAt := time.Now()
		if interval > 0 {
			if wait := time.Until(next); wait > 0 {
				time.Sleep(wait)
			}
			sentAt = next // open loop: charge schedule slip to the server
			next = next.Add(interval)
		}
		rs, err := cl.Exchange()
		lat := time.Since(sentAt)
		if err != nil {
			ctr.errs.Add(1)
			return // transport gone; this connection is done
		}
		if prog != nil {
			prog.ObserveN(lat, len(rs))
		}
		for j, r := range rs {
			b := batch[j]
			hist.Observe(lat)
			ctr.ops.Add(1)
			if r.Err != "" {
				ctr.errs.Add(1)
				continue
			}
			switch b.kind {
			case workload.OpGet:
				ctr.gets.Add(1)
				if r.Hit {
					ctr.hits.Add(1)
				} else {
					ctr.misses.Add(1)
					if cfg.FillOnMiss {
						fills = append(fills, batchOp{
							kind: workload.OpSet, key: b.key,
							valLen: b.valLen, isFill: true,
						})
					}
				}
			case workload.OpSet:
				ctr.sets.Add(1)
				n := b.valLen
				if n > len(payload) {
					n = len(payload) // what QueueSet actually sent
				}
				valBuckets[pow2Bucket(n)]++
				if b.isFill {
					ctr.fills.Add(1)
				}
			case workload.OpDelete:
				ctr.deletes.Add(1)
			}
		}
	}
}
