// Package server is the network serving layer: a memcached-text-protocol
// front door over the thread-safe sharded cache, plus the pipelined client
// and closed/open-loop load generator that drive it. It turns the simulated
// persistent cache into something a real workload can talk to — the shape
// CacheLib deployments have (a cache process serving get/set/delete over
// TCP), so serving-path effects (connection handling, pipelining, response
// batching, graceful shutdown) are measurable alongside the device-level
// ones the paper studies.
//
// The protocol is the memcached text dialect: get/gets (multi-key), set
// (with flags, exptime, and noreply), delete, stats, version, quit. Client
// flags ride inside the stored value as a 4-byte big-endian prefix, so the
// cache backend needs no schema beyond key→bytes. Expiration times follow
// memcached's rule — values up to 30 days are relative seconds, larger
// values are absolute unix times — with one simulation-honest twist: both
// forms are measured on the owning shard's simulated clock, the same clock
// the cache's own TTL machinery uses. Absolute exptimes are anchored by
// Config.WallBase (the wall instant declared to be shard time zero) and
// resolved against ShardClocked.ShardNow at execution time, so a pinned
// WallBase makes same-seed replays with absolute exptimes deterministic.
//
// Concurrency model: one goroutine per connection over buffered readers and
// writers. Responses are batched — the writer flushes only when the read
// buffer is empty, so a pipelined batch of N requests costs one flush, not
// N. A connection limit is enforced as accept backpressure (the semaphore is
// taken before Accept, so excess connections queue in the kernel instead of
// being churned through accept/close). Graceful shutdown stops accepting,
// lets every in-flight request finish and flush, and only then returns, so
// the process can snapshot the cache knowing no accepted work was dropped.
package server

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"znscache/internal/obs"
	"znscache/internal/stats"
)

// Backend is the store the server fronts. znscache.ShardedCache satisfies it
// directly; tests substitute a map. Implementations must be safe for
// concurrent use — the server calls them from one goroutine per connection.
type Backend interface {
	// Get returns the value for key and whether it was present.
	Get(key string) ([]byte, bool, error)
	// Set inserts or replaces key.
	Set(key string, value []byte) error
	// SetWithTTL inserts key with a time-to-live.
	SetWithTTL(key string, value []byte, ttl time.Duration) error
	// Delete removes key, reporting whether it was present.
	Delete(key string) bool
	// Len returns the number of cached items (served as curr_items).
	Len() int
}

// ShardClocked is an optional Backend extension for backends whose TTLs run
// on per-shard simulated clocks (znscache.ShardedCache). ShardNow reports the
// owning shard's current simulated time, so absolute memcached exptimes
// resolve on the very clock the relative ones already use: simulated instant
// Config.WallBase + ShardNow(key). Without it, absolute exptimes fall back to
// the wall clock (time.Since(WallBase) cancels WallBase out exactly), the
// right reading for a backend whose TTLs are wall-clock anyway.
type ShardClocked interface {
	// ShardNow returns the current simulated time of the shard owning key.
	ShardNow(key string) time.Duration
}

// MultiGetter is an optional Backend extension: fetch a whole multi-key get
// in one call. The cluster proxy implements it to scatter-gather one batch
// per backend node instead of paying one round trip per key. The three result
// slices are parallel to keys and fully owned by the caller; every slot must
// be written (hit, miss, or error).
type MultiGetter interface {
	GetMulti(keys []string, vals [][]byte, hits []bool, errs []error)
}

// Config parameterizes a Server. Zero values select the defaults noted on
// each field.
type Config struct {
	// Addr is the TCP listen address (default "127.0.0.1:0").
	Addr string
	// Backend serves the data. Required.
	Backend Backend
	// MaxConns caps concurrently served connections (default 1024). The cap
	// is applied as accept backpressure: connection attempts beyond it wait
	// in the kernel's accept queue rather than being refused.
	MaxConns int
	// MaxLineBytes bounds one command line (default 4096). A longer line is
	// a protocol error that closes the offending connection.
	MaxLineBytes int
	// MaxValueBytes bounds one stored value (default 1 MiB, memcached's
	// classic limit). An oversized set is swallowed and refused with
	// SERVER_ERROR; the connection survives.
	MaxValueBytes int
	// IdleTimeout closes a connection with no in-flight request after this
	// long (default 5 minutes).
	IdleTimeout time.Duration
	// ReadTimeout bounds each read while a request is in flight — a value
	// body, or the rest of a partially received line (default 30s).
	ReadTimeout time.Duration
	// WriteTimeout bounds each response flush (default 30s).
	WriteTimeout time.Duration
	// StatsExtra, when set, contributes extra STAT lines (sorted by name)
	// to the stats command — the cacheserver wires cache-level numbers
	// (hit ratio, write amplification) through it.
	StatsExtra func() map[string]string
	// Tracer, when non-nil together with SlowThreshold, receives an
	// EvSlowRequest event for every request slower than the threshold.
	Tracer *obs.Tracer
	// SlowThreshold is the latency above which a request is traced as slow
	// (0 disables slow-request tracing).
	SlowThreshold time.Duration
	// Spans, when non-nil, enables request-stage span collection: per-batch
	// sock_read/parse/queue_wait/exec/flush durations settle into the
	// recorder's histograms (sampled) and slow-request exemplar log. Nil
	// costs one pointer test per site on the serving path.
	Spans *obs.SpanRecorder
	// SLO, when non-nil, tracks per-verb latency objectives: every request
	// counts against its verb's objective at batch latency.
	SLO *obs.SLOTracker
	// WallBase anchors absolute memcached exptimes (unix times past the
	// 30-day cutoff) to the backend's clock: an absolute exptime T becomes
	// the deadline T − WallBase on the owning shard's clock (ShardClocked
	// backends) or on the wall clock measured from WallBase (plain
	// backends — algebraically identical to time.Until(T)). Zero means
	// "now" at New. Pinning it makes same-seed replays with absolute
	// exptimes deterministic: the simulated instant each exptime maps to no
	// longer depends on when the process started.
	WallBase time.Time
}

func (c *Config) fillDefaults() {
	if c.Addr == "" {
		c.Addr = "127.0.0.1:0"
	}
	if c.MaxConns <= 0 {
		c.MaxConns = 1024
	}
	if c.MaxLineBytes <= 0 {
		c.MaxLineBytes = 4096
	}
	if c.MaxValueBytes <= 0 {
		c.MaxValueBytes = 1 << 20
	}
	if c.IdleTimeout <= 0 {
		c.IdleTimeout = 5 * time.Minute
	}
	if c.ReadTimeout <= 0 {
		c.ReadTimeout = 30 * time.Second
	}
	if c.WriteTimeout <= 0 {
		c.WriteTimeout = 30 * time.Second
	}
}

// Connection states, used by the shutdown path to decide who to wake.
const (
	// connBusy: parsing or serving a request; shutdown leaves it alone.
	connBusy int32 = iota
	// connIdle: blocked waiting for a new command with nothing buffered;
	// shutdown wakes it with an expired read deadline.
	connIdle
	// connGrace: draining, giving bytes that raced the wakeup one short
	// final read before the close.
	connGrace
)

// graceRead is how long a draining connection waits for request bytes that
// raced the shutdown wakeup (written by the client before it could observe
// the close). Loopback and LAN round trips are far below this.
const graceRead = 20 * time.Millisecond

// pokeInterval is how often the shutdown loop re-arms expired read deadlines
// on idle connections (a connection can slip back to idle after a poke).
const pokeInterval = 25 * time.Millisecond

// conn is one served connection, including its reusable batch-serving state
// (see dispatch.go): parsed-op batch, response ring, and the scratch used by
// the shard-affinity dispatcher. All of it is touched only by the connection
// goroutine (the WaitGroup synchronizes the shard workers' phase work).
type conn struct {
	nc    net.Conn
	state atomic.Int32
	// partial accumulates a command line across read deadlines: a deadline
	// can fire mid-line, and bufio consumes the fragment into the caller.
	partial []byte

	fields [][]byte   // tokenizer scratch, aliases the current line
	b      batch      // parsed ops awaiting the batch boundary
	rw     respWriter // response ring, flushed once per batch
	wg     sync.WaitGroup

	// Span state (Config.Spans non-nil only). sp accumulates the current
	// pipeline batch's stage durations; it settles in flushResp. The
	// identity fields carry the batch's first op into the slow-request
	// exemplar. qwait is written by shard workers (max group queue wait);
	// spExec subtracts nested execBatch time out of the parse stage.
	sp        obs.Span
	spanOps   int
	spanVerb  string
	spanKey   string
	spanShard int32
	spExec    time.Duration
	qwait     atomic.Int64

	// Shard-dispatch scratch (sharded backends only).
	phaseW map[string]struct{} // keys written in the current phase
	phaseR map[string]struct{} // keys read in the current phase
	groups [][]int32           // per-shard op-index groups
	active []int               // shards with a non-empty group
}

// Server is a memcached-protocol TCP server over a Backend.
type Server struct {
	cfg Config
	ln  net.Listener

	mu    sync.Mutex
	conns map[*conn]struct{}

	wg       sync.WaitGroup
	sem      chan struct{}
	draining atomic.Bool
	stop     chan struct{} // closed by Shutdown to unblock the accept loop
	start    time.Time
	wallBase time.Time // Config.WallBase resolved (zero → start)

	// sharded is non-nil when Backend also implements ShardedBackend; it
	// enables the phase-split shard-affinity dispatch path (dispatch.go).
	// clocked is non-nil when Backend implements ShardClocked; absolute
	// exptimes then resolve on the shard clock instead of the wall clock.
	// multi is non-nil when Backend implements MultiGetter; multi-key gets
	// on the inline path then execute as one batched backend call.
	clocked    ShardClocked
	multi      MultiGetter
	sharded    ShardedBackend
	shardQ     []chan shardTask
	workerWG   sync.WaitGroup
	workerOnce sync.Once

	// spans is cfg.Spans; sloGet/sloSet/sloDel are cfg.SLO's per-verb
	// handles resolved once here so the render loop never does a map walk
	// (all nil-receiver-safe).
	spans  *obs.SpanRecorder
	sloGet *obs.SLOVerb
	sloSet *obs.SLOVerb
	sloDel *obs.SLOVerb

	m metrics
}

// New validates cfg, binds the listener, and returns a server ready for
// Serve. The listener is bound here so Addr is immediately meaningful.
func New(cfg Config) (*Server, error) {
	if cfg.Backend == nil {
		return nil, fmt.Errorf("server: Config.Backend is required")
	}
	cfg.fillDefaults()
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("server: listen %s: %w", cfg.Addr, err)
	}
	s := &Server{
		cfg:   cfg,
		ln:    ln,
		conns: make(map[*conn]struct{}),
		sem:   make(chan struct{}, cfg.MaxConns),
		stop:  make(chan struct{}),
		start: time.Now(),
	}
	s.m.init()
	s.wallBase = cfg.WallBase
	if s.wallBase.IsZero() {
		s.wallBase = s.start
	}
	s.spans = cfg.Spans
	s.sloGet = cfg.SLO.Verb("get")
	s.sloSet = cfg.SLO.Verb("set")
	s.sloDel = cfg.SLO.Verb("delete")
	if cb, ok := cfg.Backend.(ShardClocked); ok {
		s.clocked = cb
	}
	if mg, ok := cfg.Backend.(MultiGetter); ok {
		s.multi = mg
	}
	if sb, ok := cfg.Backend.(ShardedBackend); ok && sb.NumShards() > 0 {
		s.sharded = sb
		s.startWorkers(sb.NumShards())
	}
	return s, nil
}

// Addr returns the bound listen address ("127.0.0.1:53412").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Serve accepts connections until Shutdown. It returns nil after a shutdown
// and the accept error otherwise. Each connection is served by its own
// goroutine; the connection-limit semaphore is acquired before Accept, so a
// full server exerts backpressure instead of churning accepts.
func (s *Server) Serve() error {
	for {
		select {
		case s.sem <- struct{}{}:
		case <-s.stop:
			return nil
		}
		nc, err := s.ln.Accept()
		if err != nil {
			<-s.sem
			if s.draining.Load() {
				return nil
			}
			return fmt.Errorf("server: accept: %w", err)
		}
		c := &conn{nc: nc}
		s.mu.Lock()
		if s.draining.Load() {
			// Shutdown won the race: it already swept s.conns, so this
			// connection would never be woken. Refuse it here.
			s.mu.Unlock()
			nc.Close() //nolint:errcheck
			<-s.sem
			continue
		}
		s.conns[c] = struct{}{}
		s.mu.Unlock()
		s.m.connsTotal.Inc()
		s.m.connsOpen.Add(1)
		s.wg.Add(1)
		go s.serveConn(c)
	}
}

// Shutdown gracefully stops the server: no new connections are accepted,
// idle connections are woken and closed, and in-flight requests run to
// completion with their responses flushed. It returns nil once every
// connection has drained. If ctx expires first, all remaining connections
// are force-closed and ctx's error is returned; a request stuck inside the
// backend at that point is abandoned mid-serve (its connection is severed).
//
// Shutdown is idempotent; concurrent calls all wait for the same drain.
func (s *Server) Shutdown(ctx context.Context) error {
	if s.draining.CompareAndSwap(false, true) {
		close(s.stop)
		s.ln.Close() //nolint:errcheck
	}
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		// Every connection goroutine has exited, so no further shard
		// dispatches can happen: the workers can be retired.
		s.stopWorkers()
		close(done)
	}()
	past := time.Unix(1, 0) // any past time expires the read immediately
	tick := time.NewTicker(pokeInterval)
	defer tick.Stop()
	for {
		// Wake idle connections first so a fully idle server closes on the
		// first pass rather than after one tick.
		s.mu.Lock()
		for c := range s.conns {
			if c.state.Load() == connIdle {
				c.nc.SetReadDeadline(past) //nolint:errcheck
			}
		}
		s.mu.Unlock()
		select {
		case <-done:
			return nil
		case <-ctx.Done():
			s.mu.Lock()
			for c := range s.conns {
				c.nc.Close() //nolint:errcheck
			}
			s.mu.Unlock()
			return ctx.Err()
		case <-tick.C:
		}
	}
}

// serveConn runs one connection's request loop. It never panics the server:
// a panic in request handling (a bug, not a client behavior) is recovered,
// counted, and closes only this connection.
func (s *Server) serveConn(c *conn) {
	defer func() {
		if r := recover(); r != nil {
			s.m.panics.Inc()
		}
		c.nc.Close() //nolint:errcheck
		s.mu.Lock()
		delete(s.conns, c)
		s.mu.Unlock()
		s.m.connsOpen.Add(-1)
		<-s.sem
		s.wg.Done()
	}()

	// Only reads flow through the counting wrapper: responses are written to
	// the raw connection by flushResp (so net.Buffers reaches the TCPConn's
	// writev) and counted there.
	cc := &countConn{Conn: c.nc, in: &s.m.bytesIn, out: &s.m.bytesOut}
	br := bufio.NewReaderSize(cc, s.cfg.MaxLineBytes)
	if s.sharded != nil {
		c.groups = make([][]int32, s.sharded.NumShards())
		c.phaseW = make(map[string]struct{}, 32)
		c.phaseR = make(map[string]struct{}, 32)
	}

	for {
		if br.Buffered() == 0 && len(c.partial) == 0 {
			// Pipeline batch boundary: every command received so far is
			// parsed, so execute the batch and pay the whole batch's one
			// flush (the pipelining tests assert batching through the flush
			// counter).
			s.execBatch(c)
			if s.flushResp(c) != nil {
				return
			}
			if s.draining.Load() {
				return
			}
			c.state.Store(connIdle)
			c.nc.SetReadDeadline(time.Now().Add(s.cfg.IdleTimeout)) //nolint:errcheck
		} else if br.Buffered() == 0 {
			// Mid-batch but the buffer ran dry: the next read touches the
			// socket, so arm the stall deadline. While commands are still
			// buffered the read never blocks and re-arming the deadline per
			// command would just burn timer updates on the hot path.
			c.nc.SetReadDeadline(time.Now().Add(s.cfg.ReadTimeout)) //nolint:errcheck
		}
		// Span: time the socket read only when it is part of a request — a
		// batch is in flight or bytes are already buffered. Idle waits for a
		// fresh batch's first command are client think time, not latency.
		rec := s.spans
		var t0 time.Time
		timedRead := rec != nil && (len(c.b.ops) > 0 || len(c.partial) > 0 || br.Buffered() > 0)
		if timedRead {
			t0 = time.Now()
		}
		line, err := c.readCommand(br)
		c.state.Store(connBusy)
		if timedRead {
			c.sp.Add(obs.StageSockRead, time.Since(t0))
		}
		if err != nil {
			switch {
			case errors.Is(err, errLineTooLong):
				s.m.protoErrors.Inc()
				s.execBatch(c)
				writeClientError(&c.rw, "line too long")
				s.flushResp(c) //nolint:errcheck
				return
			case isTimeout(err):
				if !s.draining.Load() {
					// Idle or stalled-sender timeout. Anything parsed but
					// unanswered (a batch cut short mid-line) is served
					// before the close.
					s.execBatch(c)
					s.flushResp(c) //nolint:errcheck
					return
				}
				// Draining: the expired deadline is usually the shutdown
				// wakeup, but request bytes may have raced it. Give them one
				// short real read before closing.
				c.state.Store(connGrace)
				c.nc.SetReadDeadline(time.Now().Add(graceRead)) //nolint:errcheck
				line, err = c.readCommand(br)
				c.state.Store(connBusy)
				if err != nil {
					s.execBatch(c)
					s.flushResp(c) //nolint:errcheck
					return
				}
			default:
				// EOF or transport error; answer whatever was pipelined in
				// case only the client's send side is gone.
				s.execBatch(c)
				s.flushResp(c) //nolint:errcheck
				return
			}
		}
		// Span: the parse stage is parseCommand minus any execBatch it
		// triggered internally (stats, batch caps) — that time is already
		// attributed to queue_wait/exec via c.spExec.
		var res parseResult
		if rec != nil {
			c.spExec = 0
			t0 = time.Now()
			res = s.parseCommand(c, br, line)
			if d := time.Since(t0) - c.spExec; d > 0 {
				c.sp.Add(obs.StageParse, d)
			}
		} else {
			res = s.parseCommand(c, br, line)
		}
		switch res {
		case parseOK:
		default: // quit or fatal: serve what's queued, flush, close
			s.execBatch(c)
			s.flushResp(c) //nolint:errcheck
			return
		}
	}
}

// errLineTooLong marks a command line exceeding MaxLineBytes. The stream
// cannot be resynced (the line's tail would parse as commands), so it is
// fatal to the connection.
var errLineTooLong = errors.New("server: command line too long")

// readCommand reads one \n-terminated command line with the trailing
// (\r)\n stripped. A read deadline can fire mid-line — bufio hands the
// fragment to the caller — so fragments accumulate in c.partial across
// calls and the command is lost only if the connection actually dies.
func (c *conn) readCommand(br *bufio.Reader) ([]byte, error) {
	for {
		frag, err := br.ReadSlice('\n')
		if err == nil {
			if len(c.partial) == 0 {
				return trimEOL(frag), nil
			}
			line := append(c.partial, frag...)
			c.partial = nil
			return trimEOL(line), nil
		}
		if len(frag) > 0 {
			c.partial = append(c.partial, frag...)
		}
		if errors.Is(err, bufio.ErrBufferFull) {
			// The buffer is sized to MaxLineBytes, so a full buffer without
			// a delimiter is a too-long line by construction.
			return nil, errLineTooLong
		}
		if len(c.partial) >= br.Size() {
			return nil, errLineTooLong
		}
		return nil, err
	}
}

// trimEOL strips a trailing \n and optional \r.
func trimEOL(line []byte) []byte {
	n := len(line)
	if n > 0 && line[n-1] == '\n' {
		n--
	}
	if n > 0 && line[n-1] == '\r' {
		n--
	}
	return line[:n]
}

// isTimeout reports whether err is a read/write deadline expiry.
func isTimeout(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

// countConn counts raw socket bytes in each direction for the byte metrics.
type countConn struct {
	net.Conn
	in, out *stats.Counter
}

func (c *countConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	if n > 0 {
		c.in.Add(uint64(n))
	}
	return n, err
}

func (c *countConn) Write(p []byte) (int, error) {
	n, err := c.Conn.Write(p)
	if n > 0 {
		c.out.Add(uint64(n))
	}
	return n, err
}
