package server

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"net"
	"strconv"
	"strings"
	"time"
)

// Client is a pipelined memcached text-protocol client: Queue* methods
// buffer requests, Exchange flushes them in one write and reads all the
// responses. It is the load generator's transport and doubles as the test
// suite's way of speaking the protocol. Not safe for concurrent use — the
// load generator runs one Client per connection goroutine.
type Client struct {
	nc      net.Conn
	br      *bufio.Reader
	bw      *bufio.Writer
	pending []pend   // one entry per queued request
	mkeys   []string // key arena for queued multigets, spanned by pend.k0/k1
	scratch []byte   // reused body buffer when DiscardValues
	fields  [][]byte // reused tokenizer scratch for VALUE headers
	resps   []Resp   // reused Exchange result backing array
	// Timeout bounds each Exchange's network reads and writes (default 30s).
	Timeout time.Duration
	// DiscardValues, when set, drops fetched value bytes into a reused
	// scratch buffer instead of allocating a fresh slice per hit: Resp.Value
	// is nil but Hit/Flags/Cas are intact. The load generator sets it — it
	// cares about outcomes and latency, not payload contents.
	DiscardValues bool
}

// pend records one queued request: kind 'g' (single get), 'm' (multiget,
// keys in mkeys[k0:k1]), 's' (set), or 'd' (delete).
type pend struct {
	kind   byte
	k0, k1 int
}

// Resp is one request's outcome. Hit means: value found (get), stored
// (set), or key existed (delete). Err carries a server-reported error line
// verbatim (ERROR / CLIENT_ERROR ... / SERVER_ERROR ...), empty on success.
type Resp struct {
	Hit   bool
	Flags uint32
	Value []byte
	Cas   uint64
	Err   string
}

// Dial connects to a cacheserver.
func Dial(addr string) (*Client, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	if tc, ok := nc.(*net.TCPConn); ok {
		tc.SetNoDelay(true) //nolint:errcheck
	}
	return &Client{
		nc:      nc,
		br:      bufio.NewReaderSize(nc, 64<<10),
		bw:      bufio.NewWriterSize(nc, 64<<10),
		Timeout: 30 * time.Second,
	}, nil
}

// Close closes the connection.
func (c *Client) Close() error { return c.nc.Close() }

// QueueGet buffers a single-key get (or gets, when withCas).
func (c *Client) QueueGet(key string, withCas bool) {
	if withCas {
		c.bw.WriteString("gets ") //nolint:errcheck
	} else {
		c.bw.WriteString("get ") //nolint:errcheck
	}
	c.bw.WriteString(key)  //nolint:errcheck
	c.bw.WriteString(crlf) //nolint:errcheck
	c.pending = append(c.pending, pend{kind: 'g'})
}

// QueueGetMulti buffers one multi-key get ("get k1 k2 ..."). The server
// answers with the hits' VALUE blocks in request order and a single END;
// Exchange expands that into one Resp per key, so response alignment matches
// the keys queued. The keys are copied — the caller may reuse its slice.
func (c *Client) QueueGetMulti(keys []string) {
	if len(keys) == 0 {
		return
	}
	c.bw.WriteString("get") //nolint:errcheck
	k0 := len(c.mkeys)
	for _, k := range keys {
		c.bw.WriteByte(' ') //nolint:errcheck
		c.bw.WriteString(k) //nolint:errcheck
		c.mkeys = append(c.mkeys, k)
	}
	c.bw.WriteString(crlf) //nolint:errcheck
	c.pending = append(c.pending, pend{kind: 'm', k0: k0, k1: len(c.mkeys)})
}

// QueueSet buffers a set.
func (c *Client) QueueSet(key string, flags uint32, exptime int64, value []byte) {
	c.bw.WriteString("set ") //nolint:errcheck
	c.bw.WriteString(key)    //nolint:errcheck
	c.bw.WriteByte(' ')      //nolint:errcheck
	writeUint(c.bw, uint64(flags))
	c.bw.WriteByte(' ')                              //nolint:errcheck
	c.bw.WriteString(strconv.FormatInt(exptime, 10)) //nolint:errcheck
	c.bw.WriteByte(' ')                              //nolint:errcheck
	writeUint(c.bw, uint64(len(value)))
	c.bw.WriteString(crlf) //nolint:errcheck
	c.bw.Write(value)      //nolint:errcheck
	c.bw.WriteString(crlf) //nolint:errcheck
	c.pending = append(c.pending, pend{kind: 's'})
}

// QueueDelete buffers a delete.
func (c *Client) QueueDelete(key string) {
	c.bw.WriteString("delete ") //nolint:errcheck
	c.bw.WriteString(key)       //nolint:errcheck
	c.bw.WriteString(crlf)      //nolint:errcheck
	c.pending = append(c.pending, pend{kind: 'd'})
}

// Exchange flushes every queued request in one write and reads their
// responses in order. A multiget expands to one Resp per key, in the key
// order queued, so callers can line responses up with requests positionally.
// A transport error poisons the connection; a server-reported error is
// returned per-response in Resp.Err.
//
// The returned slice is valid until the next Exchange on this client: its
// backing array is reused across calls so a pipelined caller does not pay
// one allocation per batch. Copy it to retain responses longer.
func (c *Client) Exchange() ([]Resp, error) {
	if len(c.pending) == 0 {
		return nil, nil
	}
	n := 0
	for _, p := range c.pending {
		if p.kind == 'm' {
			n += p.k1 - p.k0
		} else {
			n++
		}
	}
	c.nc.SetDeadline(time.Now().Add(c.Timeout)) //nolint:errcheck
	if err := c.bw.Flush(); err != nil {
		c.reset()
		return nil, err
	}
	if cap(c.resps) < n {
		c.resps = make([]Resp, 0, n)
	}
	out := c.resps[:0]
	for _, p := range c.pending {
		var err error
		if p.kind == 'm' {
			out, err = c.readMultiGetResp(c.mkeys[p.k0:p.k1], out)
		} else {
			var r Resp
			r, err = c.readResp(p.kind)
			out = append(out, r)
		}
		if err != nil {
			c.reset()
			c.resps = out
			return out, err
		}
	}
	c.reset()
	c.resps = out
	return out, nil
}

func (c *Client) reset() {
	c.pending = c.pending[:0]
	c.mkeys = c.mkeys[:0]
}

// readResp parses one response for a request of the given kind.
func (c *Client) readResp(kind byte) (Resp, error) {
	switch kind {
	case 'g':
		return c.readGetResp()
	case 's', 'd':
		line, err := c.readLineB()
		if err != nil {
			return Resp{}, err
		}
		switch {
		case kind == 's' && string(line) == "STORED":
			return Resp{Hit: true}, nil
		case kind == 's' && string(line) == "NOT_STORED":
			return Resp{}, nil
		case kind == 'd' && string(line) == "DELETED":
			return Resp{Hit: true}, nil
		case kind == 'd' && string(line) == "NOT_FOUND":
			return Resp{}, nil
		case isErrorLineB(line):
			return Resp{Err: string(line)}, nil
		}
		return Resp{}, fmt.Errorf("server: unexpected response %q", line)
	}
	return Resp{}, fmt.Errorf("server: unknown request kind %q", kind)
}

// readValueHeader parses "VALUE <key> <flags> <bytes> [<cas>]". The returned
// key aliases line (and thus the read buffer): callers must use it before
// the next read — in particular before consumeValueBody.
func (c *Client) readValueHeader(line []byte) (key []byte, r Resp, n int, err error) {
	c.fields = fieldsInto(c.fields[:0], line)
	parts := c.fields
	if len(parts) < 4 {
		return nil, r, 0, fmt.Errorf("server: malformed VALUE line %q", line)
	}
	key = parts[1]
	flags, err := parseUintBytes(parts[2], 32)
	if err != nil {
		return nil, r, 0, fmt.Errorf("server: bad flags in %q", line)
	}
	n64, err := parseUintBytes(parts[3], 31)
	if err != nil {
		return nil, r, 0, fmt.Errorf("server: bad length in %q", line)
	}
	if len(parts) >= 5 {
		if cas, perr := parseUintBytes(parts[4], 64); perr == nil {
			r.Cas = cas
		}
	}
	r.Hit = true
	r.Flags = uint32(flags)
	return key, r, int(n64), nil
}

// consumeValueBody reads the n-byte data block plus its CRLF. With
// DiscardValues the bytes land in the reused scratch buffer and the returned
// slice is nil; otherwise a fresh copy is returned.
func (c *Client) consumeValueBody(n int) ([]byte, error) {
	if c.DiscardValues {
		if cap(c.scratch) < n+2 {
			c.scratch = make([]byte, n+2)
		}
		if _, err := io.ReadFull(c.br, c.scratch[:n+2]); err != nil {
			return nil, err
		}
		return nil, nil
	}
	body := make([]byte, n+2)
	if _, err := io.ReadFull(c.br, body); err != nil {
		return nil, err
	}
	return body[:n], nil
}

// readGetResp parses zero or one VALUE blocks terminated by END.
func (c *Client) readGetResp() (Resp, error) {
	var r Resp
	for {
		line, err := c.readLineB()
		if err != nil {
			return r, err
		}
		switch {
		case string(line) == "END":
			return r, nil
		case bytes.HasPrefix(line, []byte("VALUE ")):
			_, vr, n, err := c.readValueHeader(line)
			if err != nil {
				return r, err
			}
			if vr.Value, err = c.consumeValueBody(n); err != nil {
				return r, err
			}
			r = vr
		case isErrorLineB(line):
			r.Err = string(line)
			return r, nil // error lines are terminal; no END follows
		default:
			return r, fmt.Errorf("server: unexpected response %q", line)
		}
	}
}

// readMultiGetResp parses one multiget response — the hits' VALUE blocks in
// request key order, then END — and appends one Resp per requested key to
// out. Keys absent from an END-terminated response are misses. A terminal
// error line (the server truncates the response there, no END follows) is
// reported on every key not answered by a VALUE block: without the END, a
// skipped key cannot be distinguished from one the server never reached.
func (c *Client) readMultiGetResp(keys []string, out []Resp) ([]Resp, error) {
	base := len(out)
	for range keys {
		out = append(out, Resp{})
	}
	next := 0 // next requested key a VALUE block may match
	for {
		line, err := c.readLineB()
		if err != nil {
			return out, err
		}
		switch {
		case string(line) == "END":
			return out, nil
		case bytes.HasPrefix(line, []byte("VALUE ")):
			key, r, n, err := c.readValueHeader(line)
			if err != nil {
				return out, err
			}
			// Hits come back in request order: skip over the misses. The key
			// aliases the read buffer, so the match must happen before the
			// body read below invalidates it.
			for next < len(keys) && keys[next] != string(key) {
				next++
			}
			if next == len(keys) {
				return out, fmt.Errorf("server: unexpected key %q in multiget response", key)
			}
			if r.Value, err = c.consumeValueBody(n); err != nil {
				return out, err
			}
			out[base+next] = r
			next++
		case isErrorLineB(line):
			// The error truncates the response (no END follows), so nothing
			// distinguishes a key the server answered-by-omission from one it
			// never reached: every key without a VALUE block is unresolved —
			// including those already skipped past as presumed misses — and
			// must carry the error rather than read as a plain miss. The
			// proxy's scatter-gather depends on this: an unresolved key must
			// not be reported to its client as authoritative absence.
			for i := range keys {
				if !out[base+i].Hit {
					out[base+i].Err = string(line)
				}
			}
			return out, nil
		default:
			return out, fmt.Errorf("server: unexpected response %q", line)
		}
	}
}

// Get fetches one key.
func (c *Client) Get(key string) (Resp, error) {
	c.QueueGet(key, false)
	return c.one()
}

// Gets fetches one key with its cas token.
func (c *Client) Gets(key string) (Resp, error) {
	c.QueueGet(key, true)
	return c.one()
}

// Set stores one key.
func (c *Client) Set(key string, flags uint32, exptime int64, value []byte) (Resp, error) {
	c.QueueSet(key, flags, exptime, value)
	return c.one()
}

// Delete removes one key.
func (c *Client) Delete(key string) (Resp, error) {
	c.QueueDelete(key)
	return c.one()
}

func (c *Client) one() (Resp, error) {
	rs, err := c.Exchange()
	if err != nil {
		return Resp{}, err
	}
	return rs[0], nil
}

// Version asks the server for its version string.
func (c *Client) Version() (string, error) {
	c.nc.SetDeadline(time.Now().Add(c.Timeout)) //nolint:errcheck
	if _, err := c.bw.WriteString("version" + crlf); err != nil {
		return "", err
	}
	if err := c.bw.Flush(); err != nil {
		return "", err
	}
	line, err := c.readLine()
	if err != nil {
		return "", err
	}
	if !strings.HasPrefix(line, "VERSION ") {
		return "", fmt.Errorf("server: unexpected version response %q", line)
	}
	return strings.TrimPrefix(line, "VERSION "), nil
}

// Stats fetches the stats command as a name→value map.
func (c *Client) Stats() (map[string]string, error) {
	c.nc.SetDeadline(time.Now().Add(c.Timeout)) //nolint:errcheck
	if _, err := c.bw.WriteString("stats" + crlf); err != nil {
		return nil, err
	}
	if err := c.bw.Flush(); err != nil {
		return nil, err
	}
	out := make(map[string]string)
	for {
		line, err := c.readLine()
		if err != nil {
			return nil, err
		}
		if line == "END" {
			return out, nil
		}
		parts := strings.SplitN(line, " ", 3)
		if len(parts) != 3 || parts[0] != "STAT" {
			return nil, fmt.Errorf("server: unexpected stats line %q", line)
		}
		out[parts[1]] = parts[2]
	}
}

// Quit sends quit and closes the connection.
func (c *Client) Quit() error {
	c.bw.WriteString("quit" + crlf) //nolint:errcheck
	c.bw.Flush()                    //nolint:errcheck
	return c.nc.Close()
}

// readLineB reads one CRLF-terminated response line without allocating: the
// returned slice aliases the read buffer and is valid only until the next
// read. The hot response paths parse it in place.
func (c *Client) readLineB() ([]byte, error) {
	line, err := c.br.ReadSlice('\n')
	if err != nil {
		// ErrBufferFull cannot happen for protocol-conforming response
		// lines (they are far shorter than the 64 KiB buffer); treat it
		// like any other transport error.
		return nil, err
	}
	end := len(line) - 1
	if end > 0 && line[end-1] == '\r' {
		end--
	}
	return line[:end], nil
}

// isErrorLineB is isErrorLine over the in-place line bytes.
func isErrorLineB(line []byte) bool {
	return string(line) == "ERROR" ||
		bytes.HasPrefix(line, []byte("CLIENT_ERROR ")) ||
		bytes.HasPrefix(line, []byte("SERVER_ERROR "))
}

// readLine reads one CRLF-terminated response line as a string (cold paths:
// version, stats).
func (c *Client) readLine() (string, error) {
	line, err := c.readLineB()
	if err != nil {
		return "", err
	}
	return string(line), nil
}

// isErrorLine reports whether line is one of the protocol's error replies.
func isErrorLine(line string) bool {
	return line == "ERROR" ||
		strings.HasPrefix(line, "CLIENT_ERROR ") ||
		strings.HasPrefix(line, "SERVER_ERROR ")
}
