package server

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"strconv"
	"strings"
	"time"
)

// Client is a pipelined memcached text-protocol client: Queue* methods
// buffer requests, Exchange flushes them in one write and reads all the
// responses. It is the load generator's transport and doubles as the test
// suite's way of speaking the protocol. Not safe for concurrent use — the
// load generator runs one Client per connection goroutine.
type Client struct {
	nc      net.Conn
	br      *bufio.Reader
	bw      *bufio.Writer
	pending []byte // one request kind per queued request: 'g', 's', 'd'
	// Timeout bounds each Exchange's network reads and writes (default 30s).
	Timeout time.Duration
}

// Resp is one request's outcome. Hit means: value found (get), stored
// (set), or key existed (delete). Err carries a server-reported error line
// verbatim (ERROR / CLIENT_ERROR ... / SERVER_ERROR ...), empty on success.
type Resp struct {
	Hit   bool
	Flags uint32
	Value []byte
	Cas   uint64
	Err   string
}

// Dial connects to a cacheserver.
func Dial(addr string) (*Client, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	if tc, ok := nc.(*net.TCPConn); ok {
		tc.SetNoDelay(true) //nolint:errcheck
	}
	return &Client{
		nc:      nc,
		br:      bufio.NewReaderSize(nc, 64<<10),
		bw:      bufio.NewWriterSize(nc, 64<<10),
		Timeout: 30 * time.Second,
	}, nil
}

// Close closes the connection.
func (c *Client) Close() error { return c.nc.Close() }

// QueueGet buffers a single-key get (or gets, when withCas).
func (c *Client) QueueGet(key string, withCas bool) {
	if withCas {
		c.bw.WriteString("gets ") //nolint:errcheck
	} else {
		c.bw.WriteString("get ") //nolint:errcheck
	}
	c.bw.WriteString(key)  //nolint:errcheck
	c.bw.WriteString(crlf) //nolint:errcheck
	c.pending = append(c.pending, 'g')
}

// QueueSet buffers a set.
func (c *Client) QueueSet(key string, flags uint32, exptime int64, value []byte) {
	c.bw.WriteString("set ") //nolint:errcheck
	c.bw.WriteString(key)    //nolint:errcheck
	c.bw.WriteByte(' ')      //nolint:errcheck
	writeUint(c.bw, uint64(flags))
	c.bw.WriteByte(' ')                              //nolint:errcheck
	c.bw.WriteString(strconv.FormatInt(exptime, 10)) //nolint:errcheck
	c.bw.WriteByte(' ')                              //nolint:errcheck
	writeUint(c.bw, uint64(len(value)))
	c.bw.WriteString(crlf) //nolint:errcheck
	c.bw.Write(value)      //nolint:errcheck
	c.bw.WriteString(crlf) //nolint:errcheck
	c.pending = append(c.pending, 's')
}

// QueueDelete buffers a delete.
func (c *Client) QueueDelete(key string) {
	c.bw.WriteString("delete ") //nolint:errcheck
	c.bw.WriteString(key)       //nolint:errcheck
	c.bw.WriteString(crlf)      //nolint:errcheck
	c.pending = append(c.pending, 'd')
}

// Exchange flushes every queued request in one write and reads their
// responses in order. A transport error poisons the connection; a
// server-reported error is returned per-response in Resp.Err.
func (c *Client) Exchange() ([]Resp, error) {
	if len(c.pending) == 0 {
		return nil, nil
	}
	c.nc.SetDeadline(time.Now().Add(c.Timeout)) //nolint:errcheck
	if err := c.bw.Flush(); err != nil {
		c.pending = c.pending[:0]
		return nil, err
	}
	out := make([]Resp, 0, len(c.pending))
	for _, kind := range c.pending {
		r, err := c.readResp(kind)
		if err != nil {
			c.pending = c.pending[:0]
			return out, err
		}
		out = append(out, r)
	}
	c.pending = c.pending[:0]
	return out, nil
}

// readResp parses one response for a request of the given kind.
func (c *Client) readResp(kind byte) (Resp, error) {
	switch kind {
	case 'g':
		return c.readGetResp()
	case 's', 'd':
		line, err := c.readLine()
		if err != nil {
			return Resp{}, err
		}
		switch {
		case kind == 's' && line == "STORED":
			return Resp{Hit: true}, nil
		case kind == 's' && line == "NOT_STORED":
			return Resp{}, nil
		case kind == 'd' && line == "DELETED":
			return Resp{Hit: true}, nil
		case kind == 'd' && line == "NOT_FOUND":
			return Resp{}, nil
		case isErrorLine(line):
			return Resp{Err: line}, nil
		}
		return Resp{}, fmt.Errorf("server: unexpected response %q", line)
	}
	return Resp{}, fmt.Errorf("server: unknown request kind %q", kind)
}

// readGetResp parses zero or one VALUE blocks terminated by END.
func (c *Client) readGetResp() (Resp, error) {
	var r Resp
	for {
		line, err := c.readLine()
		if err != nil {
			return r, err
		}
		switch {
		case line == "END":
			return r, nil
		case strings.HasPrefix(line, "VALUE "):
			parts := strings.Fields(line)
			if len(parts) < 4 {
				return r, fmt.Errorf("server: malformed VALUE line %q", line)
			}
			flags, err := strconv.ParseUint(parts[2], 10, 32)
			if err != nil {
				return r, fmt.Errorf("server: bad flags in %q", line)
			}
			n, err := strconv.ParseUint(parts[3], 10, 31)
			if err != nil {
				return r, fmt.Errorf("server: bad length in %q", line)
			}
			if len(parts) >= 5 {
				if cas, err := strconv.ParseUint(parts[4], 10, 64); err == nil {
					r.Cas = cas
				}
			}
			body := make([]byte, int(n)+2)
			if _, err := io.ReadFull(c.br, body); err != nil {
				return r, err
			}
			r.Hit = true
			r.Flags = uint32(flags)
			r.Value = body[:n]
		case isErrorLine(line):
			r.Err = line
			return r, nil // error lines are terminal; no END follows
		default:
			return r, fmt.Errorf("server: unexpected response %q", line)
		}
	}
}

// Get fetches one key.
func (c *Client) Get(key string) (Resp, error) {
	c.QueueGet(key, false)
	return c.one()
}

// Gets fetches one key with its cas token.
func (c *Client) Gets(key string) (Resp, error) {
	c.QueueGet(key, true)
	return c.one()
}

// Set stores one key.
func (c *Client) Set(key string, flags uint32, exptime int64, value []byte) (Resp, error) {
	c.QueueSet(key, flags, exptime, value)
	return c.one()
}

// Delete removes one key.
func (c *Client) Delete(key string) (Resp, error) {
	c.QueueDelete(key)
	return c.one()
}

func (c *Client) one() (Resp, error) {
	rs, err := c.Exchange()
	if err != nil {
		return Resp{}, err
	}
	return rs[0], nil
}

// Version asks the server for its version string.
func (c *Client) Version() (string, error) {
	c.nc.SetDeadline(time.Now().Add(c.Timeout)) //nolint:errcheck
	if _, err := c.bw.WriteString("version" + crlf); err != nil {
		return "", err
	}
	if err := c.bw.Flush(); err != nil {
		return "", err
	}
	line, err := c.readLine()
	if err != nil {
		return "", err
	}
	if !strings.HasPrefix(line, "VERSION ") {
		return "", fmt.Errorf("server: unexpected version response %q", line)
	}
	return strings.TrimPrefix(line, "VERSION "), nil
}

// Stats fetches the stats command as a name→value map.
func (c *Client) Stats() (map[string]string, error) {
	c.nc.SetDeadline(time.Now().Add(c.Timeout)) //nolint:errcheck
	if _, err := c.bw.WriteString("stats" + crlf); err != nil {
		return nil, err
	}
	if err := c.bw.Flush(); err != nil {
		return nil, err
	}
	out := make(map[string]string)
	for {
		line, err := c.readLine()
		if err != nil {
			return nil, err
		}
		if line == "END" {
			return out, nil
		}
		parts := strings.SplitN(line, " ", 3)
		if len(parts) != 3 || parts[0] != "STAT" {
			return nil, fmt.Errorf("server: unexpected stats line %q", line)
		}
		out[parts[1]] = parts[2]
	}
}

// Quit sends quit and closes the connection.
func (c *Client) Quit() error {
	c.bw.WriteString("quit" + crlf) //nolint:errcheck
	c.bw.Flush()                    //nolint:errcheck
	return c.nc.Close()
}

// readLine reads one CRLF-terminated response line.
func (c *Client) readLine() (string, error) {
	line, err := c.br.ReadString('\n')
	if err != nil {
		return "", err
	}
	return strings.TrimRight(line, "\r\n"), nil
}

// isErrorLine reports whether line is one of the protocol's error replies.
func isErrorLine(line string) bool {
	return line == "ERROR" ||
		strings.HasPrefix(line, "CLIENT_ERROR ") ||
		strings.HasPrefix(line, "SERVER_ERROR ")
}
