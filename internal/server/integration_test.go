package server_test

import (
	"context"
	"fmt"
	"testing"
	"time"

	"znscache"
	"znscache/internal/server"
)

// openCache builds a small sharded RegionCache with value tracking — the
// cacheserver's configuration.
func openCache(t *testing.T) *znscache.ShardedCache {
	t.Helper()
	c, err := znscache.OpenSharded(znscache.ShardedConfig{
		Config: znscache.Config{Zones: 16, TrackValues: true},
		Shards: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestServeShardedCacheEndToEnd drives the loadgen against a server over the
// real simulated cache: the full serving path, protocol to device model.
func TestServeShardedCacheEndToEnd(t *testing.T) {
	c := openCache(t)
	defer c.Close() //nolint:errcheck
	s, err := server.New(server.Config{Backend: c})
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve() //nolint:errcheck
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		s.Shutdown(ctx) //nolint:errcheck
	}()

	res, err := server.Run(server.LoadConfig{
		Addr:       s.Addr(),
		Conns:      4,
		Pipeline:   8,
		Ops:        4000,
		Keys:       2048,
		Seed:       42,
		FillOnMiss: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 {
		t.Fatalf("loadgen saw %d errors against the real cache", res.Errors)
	}
	if res.Hits == 0 || res.Fills == 0 {
		t.Fatalf("no cache activity: hits=%d fills=%d", res.Hits, res.Fills)
	}
	st := c.Stats()
	if st.Sets == 0 || st.Hits == 0 {
		t.Fatalf("cache engine saw no traffic: %+v", st)
	}
}

// TestShutdownThenWarmRoll is the full graceful-shutdown story: serve
// traffic, Shutdown the server, Close the cache (snapshot), Reopen it, and
// verify the reopened cache still serves the pre-shutdown keys through a
// fresh server.
func TestShutdownThenWarmRoll(t *testing.T) {
	c := openCache(t)
	s, err := server.New(server.Config{Backend: c})
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve() //nolint:errcheck

	cl, err := server.Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	const keys = 100
	for i := 0; i < keys; i++ {
		k := fmt.Sprintf("warm:%03d", i)
		if r, err := cl.Set(k, uint32(i), 0, []byte(k)); err != nil || !r.Hit {
			t.Fatalf("Set(%s) = %+v, %v", k, r, err)
		}
	}
	cl.Close() //nolint:errcheck

	// Shutdown ordering: stop the server first (drains in-flight work),
	// then Close the cache so the snapshot covers everything served.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if err := c.Close(); err != nil {
		t.Fatalf("cache Close: %v", err)
	}

	r2, err := c.Reopen()
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close() //nolint:errcheck
	if got := r2.Len(); got != keys {
		t.Fatalf("reopened cache Len = %d, want %d", got, keys)
	}

	// A fresh server over the reopened cache serves the old data with the
	// original flags.
	s2, err := server.New(server.Config{Backend: r2})
	if err != nil {
		t.Fatal(err)
	}
	go s2.Serve() //nolint:errcheck
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		s2.Shutdown(ctx) //nolint:errcheck
	}()
	cl2, err := server.Dial(s2.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl2.Close() //nolint:errcheck
	for _, i := range []int{0, 7, 50, 99} {
		k := fmt.Sprintf("warm:%03d", i)
		r, err := cl2.Get(k)
		if err != nil {
			t.Fatal(err)
		}
		if !r.Hit || string(r.Value) != k || r.Flags != uint32(i) {
			t.Fatalf("after warm roll Get(%s) = hit=%v value=%q flags=%d", k, r.Hit, r.Value, r.Flags)
		}
	}
}

// TestStatsExtraExposesCacheNumbers wires cache stats into the stats
// command the way cmd/cacheserver does.
func TestStatsExtraExposesCacheNumbers(t *testing.T) {
	c := openCache(t)
	defer c.Close() //nolint:errcheck
	s, err := server.New(server.Config{
		Backend: c,
		StatsExtra: func() map[string]string {
			st := c.Stats()
			return map[string]string{
				"cache_hit_ratio": fmt.Sprintf("%.4f", st.HitRatio),
				"cache_scheme":    st.Scheme.String(),
				"cache_wa_factor": fmt.Sprintf("%.3f", st.WriteAmplification),
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve() //nolint:errcheck
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		s.Shutdown(ctx) //nolint:errcheck
	}()

	cl, err := server.Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close() //nolint:errcheck
	st, err := cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"cache_hit_ratio", "cache_scheme", "cache_wa_factor"} {
		if _, ok := st[want]; !ok {
			t.Errorf("stats missing %s: %v", want, st)
		}
	}
	if st["cache_scheme"] == "" {
		t.Fatal("cache_scheme empty")
	}
}
