package server_test

import (
	"context"
	"fmt"
	"testing"
	"time"

	"znscache"
	"znscache/internal/server"
)

// openCache builds a small sharded RegionCache with value tracking — the
// cacheserver's configuration.
func openCache(t *testing.T) *znscache.ShardedCache {
	t.Helper()
	c, err := znscache.OpenSharded(znscache.ShardedConfig{
		Config: znscache.Config{Zones: 16, TrackValues: true},
		Shards: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestServeShardedCacheEndToEnd drives the loadgen against a server over the
// real simulated cache: the full serving path, protocol to device model.
func TestServeShardedCacheEndToEnd(t *testing.T) {
	c := openCache(t)
	defer c.Close() //nolint:errcheck
	s, err := server.New(server.Config{Backend: c})
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve() //nolint:errcheck
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		s.Shutdown(ctx) //nolint:errcheck
	}()

	res, err := server.Run(server.LoadConfig{
		Addr:       s.Addr(),
		Conns:      4,
		Pipeline:   8,
		Ops:        4000,
		Keys:       2048,
		Seed:       42,
		FillOnMiss: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 {
		t.Fatalf("loadgen saw %d errors against the real cache", res.Errors)
	}
	if res.Hits == 0 || res.Fills == 0 {
		t.Fatalf("no cache activity: hits=%d fills=%d", res.Hits, res.Fills)
	}
	st := c.Stats()
	if st.Sets == 0 || st.Hits == 0 {
		t.Fatalf("cache engine saw no traffic: %+v", st)
	}
}

// startSharded serves a real sharded cache and tears it down with the test.
func startSharded(t *testing.T) (*znscache.ShardedCache, *server.Server) {
	t.Helper()
	c := openCache(t)
	s, err := server.New(server.Config{Backend: c})
	if err != nil {
		c.Close() //nolint:errcheck
		t.Fatal(err)
	}
	go s.Serve() //nolint:errcheck
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		s.Shutdown(ctx) //nolint:errcheck
		c.Close()       //nolint:errcheck
	})
	return c, s
}

// TestMultigetAcrossShards pins the multi-key get against the real sharded
// backend: keys spread over all shards come back in request order, misses
// silently absent, and the response-order contract the client relies on for
// positional matching holds with duplicate keys too.
func TestMultigetAcrossShards(t *testing.T) {
	c, s := startSharded(t)
	cl, err := server.Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close() //nolint:errcheck

	// Enough keys to land on every shard with overwhelming probability.
	var keys []string
	for i := 0; i < 32; i++ {
		k := fmt.Sprintf("mget:%02d", i)
		keys = append(keys, k)
		if i%2 == 0 { // odd keys stay misses
			if r, err := cl.Set(k, uint32(i), 0, []byte(k)); err != nil || !r.Hit {
				t.Fatalf("Set(%s) = %+v, %v", k, r, err)
			}
		}
	}
	// One multiget covering hits, misses, and a duplicated key.
	req := append(append([]string{}, keys...), keys[0], keys[1])
	cl.QueueGetMulti(req)
	rs, err := cl.Exchange()
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != len(req) {
		t.Fatalf("got %d responses for %d keys", len(rs), len(req))
	}
	for j, r := range rs {
		wantHit := false
		if n := j % len(keys); j < len(keys) {
			wantHit = n%2 == 0
		} else {
			wantHit = (j-len(keys))%2 == 0 // the duplicated keys[0], keys[1]
		}
		if r.Err != "" {
			t.Fatalf("response %d (%s): error %q", j, req[j], r.Err)
		}
		if r.Hit != wantHit {
			t.Fatalf("response %d (%s): hit=%v, want %v", j, req[j], r.Hit, wantHit)
		}
		if r.Hit && string(r.Value) != req[j] {
			t.Fatalf("response %d (%s): value %q", j, req[j], r.Value)
		}
	}
	if st := c.Stats(); st.Hits+st.Misses < uint64(len(req)) {
		t.Fatalf("cache saw %d lookups, want >= %d", st.Hits+st.Misses, len(req))
	}
}

// TestPipelinedReadAfterWriteAcrossShards sends one pipelined batch that
// writes and immediately reads the same keys (plus deletes), spanning every
// shard. The dispatcher splits the batch into phases at write→read conflicts,
// so each get must observe the write that precedes it in the stream even
// though writes run on per-shard workers.
func TestPipelinedReadAfterWriteAcrossShards(t *testing.T) {
	_, s := startSharded(t)
	cl, err := server.Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close() //nolint:errcheck

	const n = 24
	var want []bool // per queued response: expected hit
	for i := 0; i < n; i++ {
		k := fmt.Sprintf("raw:%02d", i)
		cl.QueueSet(k, 0, 0, []byte(k))
		want = append(want, true)
		cl.QueueGet(k, false) // read-your-write in the same batch
		want = append(want, true)
		if i%3 == 0 {
			cl.QueueDelete(k)
			want = append(want, true)
			cl.QueueGet(k, false) // read-your-delete
			want = append(want, false)
		}
	}
	rs, err := cl.Exchange()
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != len(want) {
		t.Fatalf("got %d responses, want %d", len(rs), len(want))
	}
	j := 0
	for i := 0; i < n; i++ {
		k := fmt.Sprintf("raw:%02d", i)
		if r := rs[j]; r.Err != "" || !r.Hit { // STORED
			t.Fatalf("set %s: %+v", k, r)
		}
		j++
		if r := rs[j]; r.Err != "" || !r.Hit || string(r.Value) != k {
			t.Fatalf("get-after-set %s: hit=%v value=%q err=%q", k, r.Hit, r.Value, r.Err)
		}
		j++
		if i%3 == 0 {
			if r := rs[j]; r.Err != "" || !r.Hit { // DELETED
				t.Fatalf("delete %s: %+v", k, r)
			}
			j++
			if r := rs[j]; r.Err != "" || r.Hit {
				t.Fatalf("get-after-delete %s: hit=%v err=%q", k, r.Hit, r.Err)
			}
			j++
		}
	}
}

// TestLoadgenMultigetEndToEnd drives the multiget-grouping loadgen against
// the real sharded cache and checks the reported batch-size distribution
// reconciles with the get count.
func TestLoadgenMultigetEndToEnd(t *testing.T) {
	_, s := startSharded(t)
	res, err := server.Run(server.LoadConfig{
		Addr:       s.Addr(),
		Conns:      4,
		Pipeline:   16,
		Ops:        4000,
		Keys:       1024,
		Seed:       21,
		FillOnMiss: true,
		Multiget:   8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 {
		t.Fatalf("loadgen saw %d errors", res.Errors)
	}
	if res.Multiget != 8 || len(res.GetBatchSizes) == 0 {
		t.Fatalf("batch sizes missing: multiget=%d sizes=%v", res.Multiget, res.GetBatchSizes)
	}
	var grouped, total uint64
	for n, cnt := range res.GetBatchSizes {
		if n < 1 || n > 8 {
			t.Fatalf("batch size %d outside [1,8]", n)
		}
		if n > 1 {
			grouped += cnt
		}
		total += uint64(n) * cnt
	}
	if grouped == 0 {
		t.Fatal("no multi-key gets issued despite Multiget=8 and a 50% get mix")
	}
	// Every issued get produced exactly one classified response (errors are
	// zero, so none were truncated).
	if total != res.Gets {
		t.Fatalf("batch sizes sum to %d gets, loadgen classified %d", total, res.Gets)
	}
}

// TestShutdownThenWarmRoll is the full graceful-shutdown story: serve
// traffic, Shutdown the server, Close the cache (snapshot), Reopen it, and
// verify the reopened cache still serves the pre-shutdown keys through a
// fresh server.
func TestShutdownThenWarmRoll(t *testing.T) {
	c := openCache(t)
	s, err := server.New(server.Config{Backend: c})
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve() //nolint:errcheck

	cl, err := server.Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	const keys = 100
	for i := 0; i < keys; i++ {
		k := fmt.Sprintf("warm:%03d", i)
		if r, err := cl.Set(k, uint32(i), 0, []byte(k)); err != nil || !r.Hit {
			t.Fatalf("Set(%s) = %+v, %v", k, r, err)
		}
	}
	cl.Close() //nolint:errcheck

	// Shutdown ordering: stop the server first (drains in-flight work),
	// then Close the cache so the snapshot covers everything served.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if err := c.Close(); err != nil {
		t.Fatalf("cache Close: %v", err)
	}

	r2, err := c.Reopen()
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close() //nolint:errcheck
	if got := r2.Len(); got != keys {
		t.Fatalf("reopened cache Len = %d, want %d", got, keys)
	}

	// A fresh server over the reopened cache serves the old data with the
	// original flags.
	s2, err := server.New(server.Config{Backend: r2})
	if err != nil {
		t.Fatal(err)
	}
	go s2.Serve() //nolint:errcheck
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		s2.Shutdown(ctx) //nolint:errcheck
	}()
	cl2, err := server.Dial(s2.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl2.Close() //nolint:errcheck
	for _, i := range []int{0, 7, 50, 99} {
		k := fmt.Sprintf("warm:%03d", i)
		r, err := cl2.Get(k)
		if err != nil {
			t.Fatal(err)
		}
		if !r.Hit || string(r.Value) != k || r.Flags != uint32(i) {
			t.Fatalf("after warm roll Get(%s) = hit=%v value=%q flags=%d", k, r.Hit, r.Value, r.Flags)
		}
	}
}

// TestStatsExtraExposesCacheNumbers wires cache stats into the stats
// command the way cmd/cacheserver does.
func TestStatsExtraExposesCacheNumbers(t *testing.T) {
	c := openCache(t)
	defer c.Close() //nolint:errcheck
	s, err := server.New(server.Config{
		Backend: c,
		StatsExtra: func() map[string]string {
			st := c.Stats()
			return map[string]string{
				"cache_hit_ratio": fmt.Sprintf("%.4f", st.HitRatio),
				"cache_scheme":    st.Scheme.String(),
				"cache_wa_factor": fmt.Sprintf("%.3f", st.WriteAmplification),
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve() //nolint:errcheck
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		s.Shutdown(ctx) //nolint:errcheck
	}()

	cl, err := server.Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close() //nolint:errcheck
	st, err := cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"cache_hit_ratio", "cache_scheme", "cache_wa_factor"} {
		if _, ok := st[want]; !ok {
			t.Errorf("stats missing %s: %v", want, st)
		}
	}
	if st["cache_scheme"] == "" {
		t.Fatal("cache_scheme empty")
	}
}
