package server

import (
	"strings"
	"testing"
	"time"

	"znscache/internal/obs"
)

// TestSpanStageSumMatchesRequestLatency checks the stage-sum invariant with
// every batch sampled: queue_wait + exec partitions the measured request
// window exactly, so their histogram sums and counts must equal the
// server_request_latency histogram's.
func TestSpanStageSumMatchesRequestLatency(t *testing.T) {
	rec := obs.NewSpanRecorder(obs.SpanConfig{SampleEvery: 1, SlowThreshold: -1})
	b := newMapBackend()
	s := startServer(t, Config{Backend: b, Spans: rec})
	cl, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close() //nolint:errcheck

	const ops = 50
	for i := 0; i < ops; i++ {
		if _, err := cl.Set("k", 0, 0, []byte("v")); err != nil {
			t.Fatal(err)
		}
		if r, err := cl.Get("k"); err != nil || !r.Hit {
			t.Fatalf("Get = %+v, %v", r, err)
		}
	}

	// Each synchronous command is one single-op batch, so per-op and
	// per-batch accounting coincide and the comparison is exact.
	lat := s.m.reqLatency.Snapshot()
	qw := rec.StageSnapshot(obs.StageQueueWait)
	ex := rec.StageSnapshot(obs.StageExec)
	if lat.Count != 2*ops {
		t.Fatalf("request latency count = %d, want %d", lat.Count, 2*ops)
	}
	if qw.Count != lat.Count || ex.Count != lat.Count {
		t.Fatalf("stage counts (qw=%d exec=%d) diverge from request count %d",
			qw.Count, ex.Count, lat.Count)
	}
	if qw.Sum+ex.Sum != lat.Sum {
		t.Fatalf("queue_wait(%v) + exec(%v) = %v, want request latency sum %v",
			qw.Sum, ex.Sum, qw.Sum+ex.Sum, lat.Sum)
	}
	if rec.SampledCount() != 2*ops {
		t.Fatalf("SampledCount = %d, want %d (SampleEvery 1)", rec.SampledCount(), 2*ops)
	}
	if fl := rec.StageSnapshot(obs.StageFlush); fl.Count != 2*ops {
		t.Fatalf("flush stage count = %d, want %d", fl.Count, 2*ops)
	}
}

// TestForcedSlowRequestExemplar drops the threshold to 1ns so every request
// is "slow", and checks the exemplar carries the full identity and stage
// breakdown the acceptance criterion names.
func TestForcedSlowRequestExemplar(t *testing.T) {
	rec := obs.NewSpanRecorder(obs.SpanConfig{SampleEvery: 64, SlowThreshold: time.Nanosecond})
	b := newMapBackend()
	s := startServer(t, Config{Backend: b, Spans: rec})
	cl, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close() //nolint:errcheck
	if _, err := cl.Set("hotkey", 0, 0, []byte("v")); err != nil {
		t.Fatal(err)
	}

	if rec.SlowTotal() == 0 {
		t.Fatal("no exemplar recorded with a 1ns threshold")
	}
	sr := rec.SlowRequests()[0]
	if sr.Verb != "set" || sr.Key != "hotkey" || sr.BatchOps != 1 {
		t.Fatalf("exemplar identity: %+v", sr)
	}
	if sr.Total <= 0 || sr.At.IsZero() {
		t.Fatalf("exemplar missing total/timestamp: %+v", sr)
	}
	stages := sr.Stages()
	if stages["exec"] <= 0 {
		t.Fatalf("exemplar has no exec stage: %v", stages)
	}
}

// TestSpanConcurrentPipelinedBatches is the race test: many connections
// pipelining against one recorder, with sampling and the exemplar ring both
// live. Run with -race; the assertions pin the shared counters.
func TestSpanConcurrentPipelinedBatches(t *testing.T) {
	rec := obs.NewSpanRecorder(obs.SpanConfig{
		SampleEvery: 2, SlowThreshold: time.Nanosecond, SlowLogCap: 64,
	})
	b := newMapBackend()
	s := startServer(t, Config{Backend: b, Spans: rec})

	res, err := Run(LoadConfig{
		Addr:       s.Addr(),
		Conns:      4,
		Pipeline:   8,
		Ops:        2000,
		Keys:       512,
		Seed:       7,
		FillOnMiss: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 {
		t.Fatalf("loadgen errors: %d", res.Errors)
	}
	if rec.SampledCount() == 0 {
		t.Fatal("no spans sampled under pipelined load")
	}
	if rec.SlowTotal() == 0 {
		t.Fatal("no exemplars under a 1ns threshold")
	}
	// Every sampled span observes each server stage once.
	if got := rec.StageSnapshot(obs.StageExec).Count; got != rec.SampledCount() {
		t.Fatalf("exec observations %d != sampled spans %d", got, rec.SampledCount())
	}
	for _, sr := range rec.SlowRequests() {
		if sr.BatchOps <= 0 || sr.Total <= 0 {
			t.Fatalf("malformed exemplar: %+v", sr)
		}
	}
}

// TestPerVerbRequestLatency checks the server_request_latency split: the
// unlabeled aggregate plus one labeled series per verb, counts matching the
// traffic sent.
func TestPerVerbRequestLatency(t *testing.T) {
	b := newMapBackend()
	s := startServer(t, Config{Backend: b})
	cl, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close() //nolint:errcheck
	if _, err := cl.Set("k", 0, 0, []byte("v")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := cl.Get("k"); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := cl.Delete("k"); err != nil {
		t.Fatal(err)
	}

	reg := obs.NewRegistry()
	s.MetricsInto(reg, nil)
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	body := sb.String()
	for _, want := range []string{
		`server_request_latency_count{verb="get"} 2`,
		`server_request_latency_count{verb="set"} 1`,
		`server_request_latency_count{verb="delete"} 1`,
		"server_request_latency_count 4",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

// TestServerSLOIntegration threads a tracker through the serving path and
// checks the per-verb good/total counters see the traffic.
func TestServerSLOIntegration(t *testing.T) {
	objs, err := obs.ParseObjectives("get=1s@0.999,set=1ns@0.999")
	if err != nil {
		t.Fatal(err)
	}
	slo := obs.NewSLOTracker(obs.SLOConfig{Objectives: objs})
	b := newMapBackend()
	s := startServer(t, Config{Backend: b, SLO: slo})
	cl, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close() //nolint:errcheck
	if _, err := cl.Set("k", 0, 0, []byte("v")); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Get("k"); err != nil {
		t.Fatal(err)
	}

	reg := obs.NewRegistry()
	s.MetricsInto(reg, nil)
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	body := sb.String()
	// A 1s get objective is always met; a 1ns set objective never is.
	for _, want := range []string{
		`slo_good_total{verb="get"} 1`,
		`slo_requests_total{verb="get"} 1`,
		`slo_good_total{verb="set"} 0`,
		`slo_requests_total{verb="set"} 1`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

// TestLoadgenProgressTimeline drives a short run with progress sampling on
// and checks the interval series accounts for every completed request.
func TestLoadgenProgressTimeline(t *testing.T) {
	b := newMapBackend()
	s := startServer(t, Config{Backend: b})
	var sb strings.Builder
	res, err := Run(LoadConfig{
		Addr:      s.Addr(),
		Conns:     2,
		Pipeline:  4,
		Ops:       1000,
		Keys:      256,
		Seed:      3,
		Progress:  10 * time.Millisecond,
		ProgressW: &sb,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 {
		t.Fatalf("loadgen errors: %d", res.Errors)
	}
	if len(res.Timeline) == 0 {
		t.Fatal("no timeline intervals recorded")
	}
	var sum uint64
	last := time.Duration(-1)
	for _, iv := range res.Timeline {
		sum += iv.Ops
		if iv.T <= last {
			t.Fatalf("timeline not monotonic: %v after %v", iv.T, last)
		}
		last = iv.T
		if iv.Ops > 0 && iv.P99 < iv.P50 {
			t.Fatalf("interval p99 %v below p50 %v", iv.P99, iv.P50)
		}
	}
	if sum != res.Ops {
		t.Fatalf("timeline ops %d != run ops %d", sum, res.Ops)
	}
	if !strings.Contains(sb.String(), "[loadgen]") {
		t.Fatalf("no progress lines written:\n%s", sb.String())
	}
}
