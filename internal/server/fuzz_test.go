package server

import (
	"context"
	"net"
	"testing"
	"time"
)

// FuzzProtocol throws arbitrary bytes at a live server. The invariants: the
// server never panics (a recovered panic is counted, and asserted zero), and
// it keeps serving fresh connections no matter what a previous connection
// sent. Response content is not asserted — garbage may legitimately earn
// ERROR, CLIENT_ERROR, or a severed connection.
func FuzzProtocol(f *testing.F) {
	seeds := []string{
		"get k\r\n",
		"gets a b c\r\n",
		"set k 0 0 3\r\nabc\r\n",
		"set k 0 0 3 noreply\r\nabc\r\n",
		"delete k\r\n",
		"stats\r\nversion\r\nquit\r\n",
		"set k 0 0 999999999\r\n",
		"set k 0 0 -1\r\n",
		"set k \xff\xfe 0 3\r\nabc\r\n",
		"\r\n\r\n\r\n",
		"get \x00\x01\x02\r\n",
		"set k 0 0 3\r\nabcdef\r\n",
		"VALUE injection 0 0\r\n\r\nEND\r\n",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}

	b := newMapBackend()
	b.m["k"] = encodeValue(0, []byte("v"))
	srv, err := New(Config{
		Backend:     b,
		ReadTimeout: 200 * time.Millisecond,
		IdleTimeout: 200 * time.Millisecond,
	})
	if err != nil {
		f.Fatal(err)
	}
	go srv.Serve() //nolint:errcheck
	f.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		srv.Shutdown(ctx) //nolint:errcheck
	})

	f.Fuzz(func(t *testing.T, data []byte) {
		nc, err := net.Dial("tcp", srv.Addr())
		if err != nil {
			t.Fatalf("server stopped accepting: %v", err)
		}
		nc.SetDeadline(time.Now().Add(time.Second)) //nolint:errcheck
		nc.Write(data)                              //nolint:errcheck
		// Drain whatever comes back until the server closes or goes quiet.
		buf := make([]byte, 4096)
		nc.SetReadDeadline(time.Now().Add(50 * time.Millisecond)) //nolint:errcheck
		for {
			if _, err := nc.Read(buf); err != nil {
				break
			}
		}
		nc.Close() //nolint:errcheck

		if n := srv.m.panics.Load(); n != 0 {
			t.Fatalf("server recovered %d panic(s) on input %q", n, data)
		}
		// The server must still serve a well-formed client.
		cl, err := Dial(srv.Addr())
		if err != nil {
			t.Fatalf("server dead after input %q: %v", data, err)
		}
		cl.Timeout = 2 * time.Second
		if _, err := cl.Version(); err != nil {
			t.Fatalf("server unresponsive after input %q: %v", data, err)
		}
		cl.Close() //nolint:errcheck
	})
}
