package server

import (
	"context"
	"net"
	"testing"
	"time"

	"znscache/internal/cache"
	"znscache/internal/device"
	"znscache/internal/flash"
	"znscache/internal/ssd"
	"znscache/internal/store"
)

// FuzzProtocol throws arbitrary bytes at a live server. The invariants: the
// server never panics (a recovered panic is counted, and asserted zero), and
// it keeps serving fresh connections no matter what a previous connection
// sent. Response content is not asserted — garbage may legitimately earn
// ERROR, CLIENT_ERROR, or a severed connection.
func FuzzProtocol(f *testing.F) {
	seeds := []string{
		"get k\r\n",
		"gets a b c\r\n",
		"set k 0 0 3\r\nabc\r\n",
		"set k 0 0 3 noreply\r\nabc\r\n",
		"delete k\r\n",
		"stats\r\nversion\r\nquit\r\n",
		"set k 0 0 999999999\r\n",
		"set k 0 0 -1\r\n",
		"set k \xff\xfe 0 3\r\nabc\r\n",
		"\r\n\r\n\r\n",
		"get \x00\x01\x02\r\n",
		"set k 0 0 3\r\nabcdef\r\n",
		"VALUE injection 0 0\r\n\r\nEND\r\n",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}

	b := newMapBackend()
	b.m["k"] = encodeValue(0, []byte("v"))
	srv, err := New(Config{
		Backend:     b,
		ReadTimeout: 200 * time.Millisecond,
		IdleTimeout: 200 * time.Millisecond,
	})
	if err != nil {
		f.Fatal(err)
	}
	go srv.Serve() //nolint:errcheck
	f.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		srv.Shutdown(ctx) //nolint:errcheck
	})

	f.Fuzz(func(t *testing.T, data []byte) { fuzzOneInput(t, srv, data) })
}

// fuzzOneInput throws data at srv over a fresh connection, drains whatever
// comes back, and asserts the shared invariants: no recovered panics and the
// server still answers a well-formed client afterwards.
func fuzzOneInput(t *testing.T, srv *Server, data []byte) {
	nc, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatalf("server stopped accepting: %v", err)
	}
	nc.SetDeadline(time.Now().Add(time.Second)) //nolint:errcheck
	nc.Write(data)                              //nolint:errcheck
	// Drain whatever comes back until the server closes or goes quiet.
	buf := make([]byte, 4096)
	nc.SetReadDeadline(time.Now().Add(50 * time.Millisecond)) //nolint:errcheck
	for {
		if _, err := nc.Read(buf); err != nil {
			break
		}
	}
	nc.Close() //nolint:errcheck

	if n := srv.m.panics.Load(); n != 0 {
		t.Fatalf("server recovered %d panic(s) on input %q", n, data)
	}
	// The server must still serve a well-formed client.
	cl, err := Dial(srv.Addr())
	if err != nil {
		t.Fatalf("server dead after input %q: %v", data, err)
	}
	cl.Timeout = 2 * time.Second
	if _, err := cl.Version(); err != nil {
		t.Fatalf("server unresponsive after input %q: %v", data, err)
	}
	cl.Close() //nolint:errcheck
}

// FuzzProto targets the batched parse/dispatch path over the real sharded
// cache: multi-key gets, pipelined mixed batches with read-after-write
// conflicts, and mid-batch malformed commands all flow through the phase
// splitter and per-shard workers. Same invariants as FuzzProtocol — no
// panics, server stays responsive — but the seeds aim at the batch
// machinery (phase boundaries, batch caps, multiget rendering) rather than
// single-command parsing.
func FuzzProto(f *testing.F) {
	seeds := []string{
		// Multi-key gets: hits, misses, duplicates, many keys.
		"get a b c\r\n",
		"get k k k k\r\n",
		"gets a a b\r\n",
		"get " + "x y z w v u t s r q p o n m l k j i h g f e d c b a" + "\r\n",
		// Pipelined mixed batch with read-after-write and write-after-read.
		"set a 0 0 1\r\nA\r\nget a\r\nset b 0 0 1\r\nB\r\nget a b\r\ndelete a\r\nget a\r\n",
		"get a\r\nset a 0 0 1\r\nZ\r\nget a\r\n",
		// noreply mid-batch and a stats flush point.
		"set a 1 0 1 noreply\r\nQ\r\nget a\r\nstats\r\nget a\r\n",
		// Malformed commands sandwiched between valid ones.
		"set a 0 0 1\r\nA\r\nbogus\r\nget a\r\n",
		"get a\r\nset b x y 1\r\nB\r\nget b\r\n",
		"set a 0 0 5\r\nAB\r\nget a\r\n",
		// Batch-cap pressure: many tiny ops in one write.
		"get a\r\nget b\r\nget c\r\nget d\r\nget e\r\nget f\r\nget g\r\nget h\r\n" +
			"set a 0 0 1\r\n1\r\nset b 0 0 1\r\n2\r\ndelete c\r\ndelete d\r\n",
		"version\r\nget a b\r\nversion\r\nquit\r\n",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}

	c := newFuzzSharded(f, 4)
	srv, err := New(Config{
		Backend:     c,
		ReadTimeout: 200 * time.Millisecond,
		IdleTimeout: 200 * time.Millisecond,
	})
	if err != nil {
		f.Fatal(err)
	}
	if srv.sharded == nil {
		f.Fatal("sharded dispatch not active; FuzzProto would only cover the inline path")
	}
	go srv.Serve() //nolint:errcheck
	f.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		srv.Shutdown(ctx) //nolint:errcheck
	})

	f.Fuzz(func(t *testing.T, data []byte) { fuzzOneInput(t, srv, data) })
}

// fuzzSharded adapts cache.Sharded to this package's Backend +
// ShardedBackend, so FuzzProto exercises the phase splitter and per-shard
// batch workers against real cache engines without importing the root
// package (which would close an import cycle through harness).
type fuzzSharded struct{ sh *cache.Sharded }

func (b *fuzzSharded) Get(key string) ([]byte, bool, error) { return b.sh.Get(key) }
func (b *fuzzSharded) Set(key string, value []byte) error   { return b.sh.Set(key, value, len(value)) }
func (b *fuzzSharded) SetWithTTL(key string, value []byte, ttl time.Duration) error {
	return b.sh.SetTTL(key, value, len(value), ttl)
}
func (b *fuzzSharded) Delete(key string) bool  { return b.sh.Delete(key) }
func (b *fuzzSharded) Len() int                { return b.sh.Len() }
func (b *fuzzSharded) NumShards() int          { return b.sh.NumShards() }
func (b *fuzzSharded) ShardFor(key string) int { return b.sh.ShardFor(key) }
func (b *fuzzSharded) ExecShard(i int, fn func(*cache.Cache)) error {
	b.sh.WithShard(i, fn)
	return nil
}

// newFuzzSharded builds shards small block-cache engines, each over its own
// tiny emulated SSD so values survive region flushes and Get returns real
// payload bytes.
func newFuzzSharded(f *testing.F, shards int) *fuzzSharded {
	f.Helper()
	const regionBytes = 64 << 10
	engines := make([]*cache.Cache, shards)
	for i := range engines {
		dev, err := ssd.New(ssd.Config{
			Geometry: flash.Geometry{
				Channels: 2, DiesPerChan: 1, BlocksPerDie: 16,
				PagesPerBlock: 16, PageSize: device.SectorSize,
			},
			Timing:    flash.DefaultTiming(),
			StoreData: true,
		})
		if err != nil {
			f.Fatalf("shard %d ssd: %v", i, err)
		}
		regions := int(dev.Size() / regionBytes)
		if regions > 8 {
			regions = 8
		}
		st, err := store.NewBlockStore(dev, regionBytes, regions)
		if err != nil {
			f.Fatalf("shard %d store: %v", i, err)
		}
		eng, err := cache.New(cache.Config{Store: st, TrackValues: true})
		if err != nil {
			f.Fatalf("shard %d engine: %v", i, err)
		}
		engines[i] = eng
	}
	sh, err := cache.NewSharded(engines)
	if err != nil {
		f.Fatal(err)
	}
	return &fuzzSharded{sh: sh}
}
