package server

import (
	"context"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"znscache/internal/obs"
)

// mapBackend is an in-memory Backend for protocol tests. It records the last
// TTL passed to SetWithTTL so the exptime translation is assertable, and can
// block Get on a channel to hold requests in flight for the shutdown tests.
type mapBackend struct {
	mu      sync.Mutex
	m       map[string][]byte
	lastTTL time.Duration
	ttlSets int
	deletes int

	// blockGet, when non-nil, is received from inside Get after signalling
	// getEntered — the shutdown tests park a request here.
	blockGet   chan struct{}
	getEntered chan struct{}
}

func newMapBackend() *mapBackend {
	return &mapBackend{m: make(map[string][]byte)}
}

func (b *mapBackend) Get(key string) ([]byte, bool, error) {
	b.mu.Lock()
	blocked, entered := b.blockGet, b.getEntered
	b.mu.Unlock()
	if blocked != nil {
		if entered != nil {
			select {
			case entered <- struct{}{}:
			default:
			}
		}
		<-blocked
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	v, ok := b.m[key]
	if !ok {
		return nil, false, nil
	}
	out := make([]byte, len(v))
	copy(out, v)
	return out, true, nil
}

func (b *mapBackend) Set(key string, value []byte) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.m[key] = append([]byte(nil), value...)
	return nil
}

func (b *mapBackend) SetWithTTL(key string, value []byte, ttl time.Duration) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.m[key] = append([]byte(nil), value...)
	b.lastTTL = ttl
	b.ttlSets++
	return nil
}

func (b *mapBackend) Delete(key string) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.deletes++
	_, ok := b.m[key]
	delete(b.m, key)
	return ok
}

func (b *mapBackend) Len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.m)
}

// ttlState reads the TTL-tracking fields under the lock: the response
// arriving at the client does not synchronize the test goroutine with the
// serving goroutine in the Go memory model, so assertions must take the
// backend's own mutex.
func (b *mapBackend) ttlState() (time.Duration, int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.lastTTL, b.ttlSets
}

// startServer runs a server over the backend and tears it down with the test.
func startServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve() //nolint:errcheck
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		s.Shutdown(ctx) //nolint:errcheck
	})
	return s
}

func TestProtocolBasics(t *testing.T) {
	b := newMapBackend()
	s := startServer(t, Config{Backend: b})
	cl, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close() //nolint:errcheck

	if v, err := cl.Version(); err != nil || v != Version {
		t.Fatalf("Version = %q, %v", v, err)
	}

	r, err := cl.Set("alpha", 7, 0, []byte("hello world"))
	if err != nil || !r.Hit || r.Err != "" {
		t.Fatalf("Set = %+v, %v", r, err)
	}
	r, err = cl.Get("alpha")
	if err != nil {
		t.Fatal(err)
	}
	if !r.Hit || string(r.Value) != "hello world" || r.Flags != 7 {
		t.Fatalf("Get = %+v", r)
	}

	// gets returns a cas token that is stable for an unchanged value and
	// changes when the value changes.
	g1, err := cl.Gets("alpha")
	if err != nil || !g1.Hit {
		t.Fatalf("Gets = %+v, %v", g1, err)
	}
	g2, _ := cl.Gets("alpha")
	if g1.Cas != g2.Cas {
		t.Fatalf("cas changed for an unchanged value: %d vs %d", g1.Cas, g2.Cas)
	}
	if _, err := cl.Set("alpha", 7, 0, []byte("changed")); err != nil {
		t.Fatal(err)
	}
	g3, _ := cl.Gets("alpha")
	if g3.Cas == g1.Cas {
		t.Fatal("cas unchanged after the value changed")
	}

	if r, _ := cl.Get("missing"); r.Hit {
		t.Fatalf("Get(missing) = %+v", r)
	}
	if r, _ := cl.Delete("alpha"); !r.Hit {
		t.Fatalf("Delete = %+v", r)
	}
	if r, _ := cl.Delete("alpha"); r.Hit {
		t.Fatal("second Delete reported DELETED")
	}

	st, err := cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"cmd_get", "cmd_set", "get_hits", "get_misses", "curr_items", "uptime_seconds"} {
		if _, ok := st[want]; !ok {
			t.Errorf("stats missing %s: %v", want, st)
		}
	}
	if st["cmd_set"] == "0" {
		t.Fatalf("cmd_set = %s after sets", st["cmd_set"])
	}
}

// rawExchange writes raw bytes and reads until the deadline or n bytes of
// response, for driving malformed input that Client cannot produce.
func rawExchange(t *testing.T, addr string, req string) string {
	t.Helper()
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close() //nolint:errcheck
	return rawOn(t, nc, req)
}

func rawOn(t *testing.T, nc net.Conn, req string) string {
	t.Helper()
	nc.SetDeadline(time.Now().Add(2 * time.Second)) //nolint:errcheck
	if _, err := nc.Write([]byte(req)); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64<<10)
	var out []byte
	nc.SetReadDeadline(time.Now().Add(150 * time.Millisecond)) //nolint:errcheck
	for {
		n, err := nc.Read(buf)
		out = append(out, buf[:n]...)
		if err != nil {
			break
		}
	}
	return string(out)
}

func TestProtocolMalformed(t *testing.T) {
	cases := []struct {
		name string
		req  string
		want string // substring the response must contain
	}{
		{"empty line", "\r\n", "ERROR"},
		{"unknown command", "frobnicate now\r\n", "ERROR"},
		{"get without key", "get\r\n", "ERROR"},
		{"get oversized key", "get " + strings.Repeat("k", 251) + "\r\n", "CLIENT_ERROR bad key"},
		{"get control-char key", "get a\x01b\r\n", "CLIENT_ERROR bad key"},
		{"set bad length", "set k 0 0 notanumber\r\nxxx\r\n", "CLIENT_ERROR bad data chunk length"},
		{"set negative length", "set k 0 0 -5\r\n", "CLIENT_ERROR bad data chunk length"},
		{"set missing fields", "set k 0\r\n", "CLIENT_ERROR bad command line format"},
		{"set bad terminator", "set k 0 0 3\r\nabcXX", "CLIENT_ERROR bad data chunk"},
		{"set bad flags", "set k notanum 0 3\r\nabc\r\n", "CLIENT_ERROR bad command line format"},
		{"set bad exptime", "set k 0 xyz 3\r\nabc\r\n", "CLIENT_ERROR bad command line format"},
		{"set bad fifth arg", "set k 0 0 3 blah\r\nabc\r\n", "CLIENT_ERROR bad command line format"},
		{"delete without key", "delete\r\n", "CLIENT_ERROR bad command line format"},
		{"delete extra args", "delete k x\r\n", "CLIENT_ERROR bad command line format"},
		{"truncated set", "set k 0 0 10\r\nabc", ""}, // body never arrives; no reply owed
		{"line too long", strings.Repeat("g", 5000) + "\r\n", "CLIENT_ERROR line too long"},
	}
	b := newMapBackend()
	s := startServer(t, Config{Backend: b, ReadTimeout: 300 * time.Millisecond})
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := rawExchange(t, s.Addr(), tc.req)
			if tc.want != "" && !strings.Contains(got, tc.want) {
				t.Fatalf("response %q does not contain %q", got, tc.want)
			}
		})
	}
	if s.m.protoErrors.Load() == 0 {
		t.Fatal("malformed commands were not counted as protocol errors")
	}
	// The server survives all of it: a fresh connection still works.
	cl, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close() //nolint:errcheck
	if _, err := cl.Version(); err != nil {
		t.Fatalf("server unusable after malformed traffic: %v", err)
	}
}

// TestMalformedKillsOnlyOffender pins that a fatal protocol error severs the
// offending connection and nothing else.
func TestMalformedKillsOnlyOffender(t *testing.T) {
	b := newMapBackend()
	s := startServer(t, Config{Backend: b})

	good, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer good.Close() //nolint:errcheck
	if _, err := good.Set("keep", 0, 0, []byte("v")); err != nil {
		t.Fatal(err)
	}

	bad, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	resp := rawOn(t, bad, "set k 0 0 zap\r\n")
	if !strings.Contains(resp, "CLIENT_ERROR") {
		t.Fatalf("offender response %q", resp)
	}
	// The offender's connection is closed: another write+read sees EOF/reset.
	bad.SetDeadline(time.Now().Add(time.Second)) //nolint:errcheck
	bad.Write([]byte("version\r\n"))             //nolint:errcheck
	one := make([]byte, 1)
	if _, err := bad.Read(one); err == nil {
		t.Fatal("offending connection still open after a fatal protocol error")
	}
	bad.Close() //nolint:errcheck

	// The good connection is untouched.
	r, err := good.Get("keep")
	if err != nil || !r.Hit {
		t.Fatalf("innocent connection broken: %+v, %v", r, err)
	}
}

func TestNoreplyAndMultiGet(t *testing.T) {
	b := newMapBackend()
	s := startServer(t, Config{Backend: b})

	nc, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close() //nolint:errcheck
	// Two noreply sets produce no output; the multi-get that follows is the
	// first response on the wire.
	req := "set a 1 0 2 noreply\r\nAA\r\n" +
		"set b 2 0 2 noreply\r\nBB\r\n" +
		"get a b missing\r\n"
	got := rawOn(t, nc, req)
	want := "VALUE a 1 2\r\nAA\r\nVALUE b 2 2\r\nBB\r\nEND\r\n"
	if got != want {
		t.Fatalf("multi-get after noreply sets:\n got %q\nwant %q", got, want)
	}
	// delete noreply: silent, observable through the next get.
	got = rawOn(t, nc, "delete a noreply\r\nget a\r\n")
	if got != "END\r\n" {
		t.Fatalf("after noreply delete: %q", got)
	}
}

func TestExptimeSemantics(t *testing.T) {
	b := newMapBackend()
	s := startServer(t, Config{Backend: b})
	cl, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close() //nolint:errcheck

	// Relative: seconds become a TTL.
	if _, err := cl.Set("rel", 0, 60, []byte("v")); err != nil {
		t.Fatal(err)
	}
	if ttl, _ := b.ttlState(); ttl != 60*time.Second {
		t.Fatalf("relative exptime TTL = %v, want 60s", ttl)
	}
	// Zero: plain set, no TTL call.
	_, ttlSets := b.ttlState()
	if _, err := cl.Set("zero", 0, 0, []byte("v")); err != nil {
		t.Fatal(err)
	}
	if _, n := b.ttlState(); n != ttlSets {
		t.Fatal("exptime 0 used SetWithTTL")
	}
	// Negative: already expired — observably deleted.
	if _, err := cl.Set("neg", 0, -1, []byte("v")); err != nil {
		t.Fatal(err)
	}
	if r, _ := cl.Get("neg"); r.Hit {
		t.Fatal("negative exptime left the key visible")
	}
	// Absolute future unix time: TTL approximates the interval.
	future := time.Now().Add(1 * time.Hour).Unix()
	if _, err := cl.Set("abs", 0, future, []byte("v")); err != nil {
		t.Fatal(err)
	}
	if ttl, _ := b.ttlState(); ttl < 59*time.Minute || ttl > 61*time.Minute {
		t.Fatalf("absolute exptime TTL = %v, want ≈1h", ttl)
	}
	// Absolute past unix time: expired — deleted.
	if _, err := cl.Set("past", 0, time.Now().Add(-time.Hour).Unix(), []byte("v")); err != nil {
		t.Fatal(err)
	}
	if r, _ := cl.Get("past"); r.Hit {
		t.Fatal("past absolute exptime left the key visible")
	}
}

func TestOversizedValueRefusedConnectionSurvives(t *testing.T) {
	b := newMapBackend()
	s := startServer(t, Config{Backend: b, MaxValueBytes: 1024})

	nc, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close() //nolint:errcheck
	big := strings.Repeat("x", 4096)
	got := rawOn(t, nc, "set big 0 0 4096\r\n"+big+"\r\n")
	if !strings.Contains(got, "SERVER_ERROR object too large for cache") {
		t.Fatalf("oversized set response %q", got)
	}
	// The stream stayed in sync and the connection survives.
	got = rawOn(t, nc, "set ok 0 0 2\r\nhi\r\nget ok\r\n")
	if !strings.Contains(got, "STORED") || !strings.Contains(got, "VALUE ok 0 2") {
		t.Fatalf("connection desynced after oversized set: %q", got)
	}
}

func TestPipelinedBatchFlushesOnce(t *testing.T) {
	b := newMapBackend()
	s := startServer(t, Config{Backend: b})
	b.m["k"] = encodeValue(0, []byte("v"))

	nc, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close() //nolint:errcheck

	const pipelined = 32
	var req strings.Builder
	for i := 0; i < pipelined; i++ {
		req.WriteString("get k\r\n")
	}
	before := s.m.flushes.Load()
	got := rawOn(t, nc, req.String())
	if n := strings.Count(got, "END\r\n"); n != pipelined {
		t.Fatalf("got %d responses, want %d", n, pipelined)
	}
	flushes := s.m.flushes.Load() - before
	// One write from the client should be served as very few batches — the
	// whole point of flush-on-empty-read-buffer. TCP may split the request
	// across reads, so allow a little slack, but far below one per op.
	if flushes > pipelined/4 {
		t.Fatalf("%d flushes for %d pipelined ops; batching is broken", flushes, pipelined)
	}
}

func TestConnectionLimitBackpressure(t *testing.T) {
	b := newMapBackend()
	s := startServer(t, Config{Backend: b, MaxConns: 2})

	c1, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close() //nolint:errcheck
	c2, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close() //nolint:errcheck
	if _, err := c1.Version(); err != nil {
		t.Fatal(err)
	}
	if _, err := c2.Version(); err != nil {
		t.Fatal(err)
	}

	// A third connection is accepted by the kernel but not served: its
	// request gets no response while the limit holds.
	c3, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c3.Close() //nolint:errcheck
	c3.Timeout = 300 * time.Millisecond
	if _, err := c3.Version(); err == nil || !isTimeout(err) {
		t.Fatalf("third connection served beyond MaxConns (err=%v)", err)
	}

	// Freeing a slot lets it through.
	c1.Quit() //nolint:errcheck
	c3.Timeout = 2 * time.Second
	deadline := time.Now().Add(2 * time.Second)
	for {
		if _, err := c3.Version(); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("third connection never served after a slot freed")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestGracefulShutdownDrainsInFlight is the losslessness contract: a
// pipelined batch already accepted when Shutdown begins is fully answered
// before the connection closes.
func TestGracefulShutdownDrainsInFlight(t *testing.T) {
	b := newMapBackend()
	b.m["k"] = encodeValue(0, []byte("v"))
	b.blockGet = make(chan struct{})
	b.getEntered = make(chan struct{}, 1)
	s := startServer(t, Config{Backend: b})

	nc, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close() //nolint:errcheck

	// An idle second connection must be closed by the drain, not hang it.
	idle, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer idle.Close() //nolint:errcheck

	const pipelined = 10
	var req strings.Builder
	for i := 0; i < pipelined; i++ {
		req.WriteString("get k\r\n")
	}
	if _, err := nc.Write([]byte(req.String())); err != nil {
		t.Fatal(err)
	}
	<-b.getEntered // the server is mid-request now

	done := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		done <- s.Shutdown(ctx)
	}()
	// Shutdown must not complete while a request is in flight.
	select {
	case err := <-done:
		t.Fatalf("Shutdown returned (%v) with a request in flight", err)
	case <-time.After(100 * time.Millisecond):
	}

	close(b.blockGet) // release the backend
	if err := <-done; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}

	// Every pipelined response arrived, then EOF.
	nc.SetReadDeadline(time.Now().Add(2 * time.Second)) //nolint:errcheck
	buf := make([]byte, 64<<10)
	var out []byte
	sawEOF := false
	for {
		n, err := nc.Read(buf)
		out = append(out, buf[:n]...)
		if err != nil {
			sawEOF = true
			break
		}
	}
	if !sawEOF {
		t.Fatal("connection not closed after drain")
	}
	if n := strings.Count(string(out), "END\r\n"); n != pipelined {
		t.Fatalf("drained connection got %d/%d responses:\n%q", n, pipelined, out)
	}

	// The idle connection was closed too.
	idle.SetReadDeadline(time.Now().Add(2 * time.Second)) //nolint:errcheck
	if _, err := idle.Read(buf); err == nil {
		t.Fatal("idle connection still open after Shutdown returned")
	}

	// And new connections cannot reach the server.
	if cl, err := Dial(s.Addr()); err == nil {
		cl.Timeout = 300 * time.Millisecond
		if _, verr := cl.Version(); verr == nil {
			t.Fatal("request served after Shutdown")
		}
		cl.Close() //nolint:errcheck
	}
}

func TestShutdownContextForceCloses(t *testing.T) {
	b := newMapBackend()
	b.m["k"] = encodeValue(0, []byte("v"))
	b.blockGet = make(chan struct{})
	b.getEntered = make(chan struct{}, 1)
	defer close(b.blockGet) // unstick the handler after the test
	s := startServer(t, Config{Backend: b})

	nc, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close() //nolint:errcheck
	if _, err := nc.Write([]byte("get k\r\n")); err != nil {
		t.Fatal(err)
	}
	<-b.getEntered

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := s.Shutdown(ctx); err != context.DeadlineExceeded {
		t.Fatalf("Shutdown = %v, want context.DeadlineExceeded", err)
	}
}

func TestSlowRequestTracing(t *testing.T) {
	b := newMapBackend()
	tr := obs.NewTracer(64)
	s := startServer(t, Config{Backend: b, Tracer: tr, SlowThreshold: time.Nanosecond})
	cl, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close() //nolint:errcheck
	if _, err := cl.Set("x", 0, 0, []byte("y")); err != nil {
		t.Fatal(err)
	}
	events := tr.Events()
	if len(events) == 0 {
		t.Fatal("no slow-request events with a 1ns threshold")
	}
	ev := events[0]
	if ev.Type != obs.EvSlowRequest || ev.Zone != -1 || ev.Region != -1 || ev.Bytes <= 0 {
		t.Fatalf("unexpected event %+v", ev)
	}
	if s.m.slowRequests.Load() == 0 {
		t.Fatal("slow request not counted")
	}
}

func TestMetricsRegistration(t *testing.T) {
	b := newMapBackend()
	s := startServer(t, Config{Backend: b})
	cl, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close() //nolint:errcheck
	if _, err := cl.Set("m", 0, 0, []byte("v")); err != nil {
		t.Fatal(err)
	}
	if r, err := cl.Get("m"); err != nil || !r.Hit {
		t.Fatalf("Get = %+v, %v", r, err)
	}

	reg := obs.NewRegistry()
	s.MetricsInto(reg, obs.L("job", "cacheserver"))
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	body := sb.String()
	for _, want := range []string{
		`server_ops_total{job="cacheserver",verb="get"} 1`,
		`server_ops_total{job="cacheserver",verb="set"} 1`,
		`server_get_hits_total{job="cacheserver"} 1`,
		`server_connections_open{job="cacheserver"} 1`,
		"server_request_latency_count",
		"server_bytes_in_total",
		"server_flushes_total",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %q:\n%s", want, body)
		}
	}
}
