package server

import (
	"errors"
	"strings"
	"testing"
)

// errBackend injects per-key Get errors over a mapBackend, producing the
// truncated multiget responses (SERVER_ERROR instead of END) the client's
// error-marking logic has to survive.
type errBackend struct {
	*mapBackend
	failKeys map[string]error
}

func (b *errBackend) Get(key string) ([]byte, bool, error) {
	if err, ok := b.failKeys[key]; ok {
		return nil, false, err
	}
	return b.mapBackend.Get(key)
}

// TestMultiGetMidStreamErrorMarksUnresolved covers the truncation case: the
// server renders hits in request order and cuts the response at the first
// backend error, so a requested key skipped before the cut (a presumed miss)
// is in fact unresolved. Every key without a VALUE block must carry the
// error — a zero-value Resp would be indistinguishable from a true miss,
// which the proxy would wrongly propagate as authoritative absence.
func TestMultiGetMidStreamErrorMarksUnresolved(t *testing.T) {
	b := &errBackend{
		mapBackend: newMapBackend(),
		failKeys:   map[string]error{"k3": errors.New("disk on fire")},
	}
	s := startServer(t, Config{Backend: b})
	cl, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close() //nolint:errcheck
	for _, k := range []string{"k2", "k4"} {
		if _, err := cl.Set(k, 0, 0, []byte("v-"+k)); err != nil {
			t.Fatal(err)
		}
	}

	// k1 misses (skipped before the cut), k2 hits, k3 errors (the cut), k4
	// is never reached.
	cl.QueueGetMulti([]string{"k1", "k2", "k3", "k4"})
	rs, err := cl.Exchange()
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 4 {
		t.Fatalf("got %d responses, want 4", len(rs))
	}
	if !rs[1].Hit || string(rs[1].Value) != "v-k2" {
		t.Fatalf("k2 = %+v, want hit", rs[1])
	}
	for _, i := range []int{0, 2, 3} {
		if rs[i].Hit {
			t.Fatalf("rs[%d] = %+v, want unresolved", i, rs[i])
		}
		if !strings.Contains(rs[i].Err, "SERVER_ERROR") {
			t.Fatalf("rs[%d].Err = %q, want the SERVER_ERROR line (unresolved, not a miss)", i, rs[i].Err)
		}
	}

	// The connection survives the truncated response: an END-terminated
	// multiget afterwards resolves cleanly, misses with empty Err.
	cl.QueueGetMulti([]string{"k1", "k2"})
	rs, err = cl.Exchange()
	if err != nil {
		t.Fatal(err)
	}
	if rs[0].Hit || rs[0].Err != "" {
		t.Fatalf("k1 after clean END = %+v, want plain miss", rs[0])
	}
	if !rs[1].Hit {
		t.Fatalf("k2 after clean END = %+v, want hit", rs[1])
	}
}

// TestMultiGetDuplicateKeys requests the same key several times in one
// multiget: the server renders one VALUE block per occurrence, and the
// client's in-order matcher must land each block on its own slot — including
// duplicates separated by a missing key.
func TestMultiGetDuplicateKeys(t *testing.T) {
	b := newMapBackend()
	s := startServer(t, Config{Backend: b})
	cl, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close() //nolint:errcheck
	if _, err := cl.Set("k1", 3, 0, []byte("dup")); err != nil {
		t.Fatal(err)
	}

	cl.QueueGetMulti([]string{"k1", "k1"})
	rs, err := cl.Exchange()
	if err != nil {
		t.Fatal(err)
	}
	for i := range rs {
		if !rs[i].Hit || string(rs[i].Value) != "dup" || rs[i].Flags != 3 {
			t.Fatalf("dup rs[%d] = %+v", i, rs[i])
		}
	}

	// A miss between the duplicates: the skip loop must pass over it and
	// still match the second occurrence.
	cl.QueueGetMulti([]string{"k1", "missing", "k1"})
	rs, err = cl.Exchange()
	if err != nil {
		t.Fatal(err)
	}
	if !rs[0].Hit || !rs[2].Hit {
		t.Fatalf("duplicates around a miss = %+v / %+v, want both hits", rs[0], rs[2])
	}
	if rs[1].Hit || rs[1].Err != "" {
		t.Fatalf("middle miss = %+v, want plain miss", rs[1])
	}
}

// TestMultiGetDuplicateKeysWithError mixes duplicates with a truncating
// error: the duplicate occurrence after the cut is unresolved even though an
// earlier occurrence of the same key was answered.
func TestMultiGetDuplicateKeysWithError(t *testing.T) {
	b := &errBackend{
		mapBackend: newMapBackend(),
		failKeys:   map[string]error{"kerr": errors.New("bad sector")},
	}
	s := startServer(t, Config{Backend: b})
	cl, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close() //nolint:errcheck
	if _, err := cl.Set("k1", 0, 0, []byte("v")); err != nil {
		t.Fatal(err)
	}

	cl.QueueGetMulti([]string{"k1", "kerr", "k1"})
	rs, err := cl.Exchange()
	if err != nil {
		t.Fatal(err)
	}
	if !rs[0].Hit {
		t.Fatalf("first occurrence = %+v, want hit (answered before the cut)", rs[0])
	}
	for _, i := range []int{1, 2} {
		if rs[i].Hit || !strings.Contains(rs[i].Err, "SERVER_ERROR") {
			t.Fatalf("rs[%d] = %+v, want unresolved with the error", i, rs[i])
		}
	}
}
