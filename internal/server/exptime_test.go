package server

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

// clockedBackend is a mapBackend with a controllable per-shard simulated
// clock: the regression tests for the absolute-exptime fix drive the clock
// explicitly and assert the stored TTLs are exact functions of it (no
// wall-clock reading can produce exact equality).
type clockedBackend struct {
	*mapBackend
	now atomic.Int64 // simulated shard time, time.Duration ticks
}

func newClockedBackend() *clockedBackend {
	return &clockedBackend{mapBackend: newMapBackend()}
}

func (b *clockedBackend) ShardNow(key string) time.Duration {
	return time.Duration(b.now.Load())
}

// ttlLog reads the recorded (ttl, count) state; see mapBackend.ttlState.
func (b *clockedBackend) set(t *testing.T, cl *Client, key string, exptime int64) {
	t.Helper()
	if _, err := cl.Set(key, 0, exptime, []byte("v")); err != nil {
		t.Fatalf("set %s exptime=%d: %v", key, exptime, err)
	}
}

// TestExptimeCutoffBoundaryOnShardClock pins WallBase and drives the shard
// clock directly, asserting the 30-day-rule boundary:
//
//   - exptime == relativeExpCutoff: relative — TTL is exactly exptime
//     seconds, the shard clock's position is irrelevant;
//   - exptime == relativeExpCutoff+1: absolute — interpreted as a unix time
//     anchored at WallBase, resolved against the shard clock at execution.
//
// Exact TTL equality is the regression teeth: the old expTTL read the wall
// clock (time.Until) for absolute exptimes, which can never reproduce the
// shard-clock arithmetic exactly.
func TestExptimeCutoffBoundaryOnShardClock(t *testing.T) {
	base := time.Unix(1_000_000_000, 0) // arbitrary pinned anchor
	b := newClockedBackend()
	s := startServer(t, Config{Backend: b, WallBase: base})
	cl, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close() //nolint:errcheck

	// Park the shard clock far from zero so a relative TTL that accidentally
	// consulted it would be visibly wrong.
	b.now.Store(int64(100_000 * time.Second))

	// At the cutoff: still relative.
	b.set(t, cl, "rel", relativeExpCutoff)
	if ttl, _ := b.ttlState(); ttl != relativeExpCutoff*time.Second {
		t.Fatalf("exptime=cutoff TTL = %v, want exactly %v", ttl, relativeExpCutoff*time.Second)
	}

	// One past the cutoff: absolute. As a unix time it is ~Feb 1970, long
	// before WallBase, so the value must be treated as already expired —
	// observably a delete, never a store.
	_, before := b.ttlState()
	b.set(t, cl, "past", relativeExpCutoff+1)
	if _, n := b.ttlState(); n != before {
		t.Fatal("exptime=cutoff+1 (past unix time) reached SetWithTTL")
	}
	if r, _ := cl.Get("past"); r.Hit {
		t.Fatal("exptime=cutoff+1 (past unix time) left the key visible")
	}

	// A future absolute exptime resolves on the shard clock: deadline is
	// exptime − WallBase, remaining TTL is deadline − ShardNow, exactly.
	exptime := base.Unix() + 2_600_000
	b.set(t, cl, "abs", exptime)
	wantTTL := 2_600_000*time.Second - 100_000*time.Second
	if ttl, _ := b.ttlState(); ttl != wantTTL {
		t.Fatalf("absolute exptime TTL = %v, want exactly %v (shard-clock resolution)", ttl, wantTTL)
	}

	// Advance the shard clock past the deadline: the same exptime is now
	// expired on the shard clock (wall time has barely moved).
	b.now.Store(int64(2_600_000 * time.Second))
	_, before = b.ttlState()
	b.set(t, cl, "abs2", exptime)
	if _, n := b.ttlState(); n != before {
		t.Fatal("shard-clock-expired absolute exptime reached SetWithTTL")
	}
	if r, _ := cl.Get("abs2"); r.Hit {
		t.Fatal("shard-clock-expired absolute exptime left the key visible")
	}
}

// TestAbsoluteExptimeReplayDeterministic replays one request sequence with
// absolute exptimes twice, each run against a fresh server with the same
// pinned WallBase and the same shard-clock schedule. Every resolved TTL must
// be byte-identical across runs and equal to the predicted shard-clock
// arithmetic — the determinism property the wall-clock expTTL broke (two
// runs parse at different wall instants, so time.Until yields different
// durations every time).
func TestAbsoluteExptimeReplayDeterministic(t *testing.T) {
	base := time.Unix(1_700_000_000, 0)
	schedule := []time.Duration{0, 7 * time.Second, 90 * time.Second, 3 * time.Hour}
	exptimes := []int64{
		base.Unix() + 3600,       // 1h after base
		base.Unix() + 86_400,     // 1d after base
		base.Unix() + 12_000_000, // ~139d after base
	}

	run := func() []time.Duration {
		b := newClockedBackend()
		s := startServer(t, Config{Backend: b, WallBase: base})
		cl, err := Dial(s.Addr())
		if err != nil {
			t.Fatal(err)
		}
		defer cl.Close() //nolint:errcheck
		var ttls []time.Duration
		for i, now := range schedule {
			b.now.Store(int64(now))
			for j, exp := range exptimes {
				if exp-base.Unix() <= int64(now/time.Second) {
					continue // would expire; only live stores record a TTL
				}
				b.set(t, cl, fmt.Sprintf("k%d_%d", i, j), exp)
				ttl, _ := b.ttlState()
				ttls = append(ttls, ttl)
			}
		}
		return ttls
	}

	first := run()
	second := run()
	if len(first) != len(second) {
		t.Fatalf("replay lengths differ: %d vs %d", len(first), len(second))
	}
	idx := 0
	for _, now := range schedule {
		for _, exp := range exptimes {
			if exp-base.Unix() <= int64(now/time.Second) {
				continue
			}
			want := time.Duration(exp-base.Unix())*time.Second - now
			if first[idx] != want {
				t.Fatalf("run 1 ttl[%d] = %v, want %v", idx, first[idx], want)
			}
			if first[idx] != second[idx] {
				t.Fatalf("replay diverged at %d: %v vs %v", idx, first[idx], second[idx])
			}
			idx++
		}
	}
}
