package server

import (
	"context"
	"net"
	"strings"
	"testing"
	"time"
)

// TestQuitMidBatchFlushesQueuedReplies pins the drain-vs-pipeline contract
// the proxy relies on: a pipelined batch terminated by quit, with Shutdown
// racing the batch mid-execBatch (the backend Get is parked), must still
// flush every queued reply before the connection closes. The draining check
// in serveConn sits after flushResp — this test keeps it there.
func TestQuitMidBatchFlushesQueuedReplies(t *testing.T) {
	b := newMapBackend()
	b.m["k"] = encodeValue(0, []byte("v"))
	b.blockGet = make(chan struct{})
	b.getEntered = make(chan struct{}, 1)
	s := startServer(t, Config{Backend: b})

	nc, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close() //nolint:errcheck

	// One write: a pipelined run of gets ending in quit. The server parses
	// them all, and the quit closes the batch — execBatch parks on the first
	// blocked Get with every reply still owed.
	const pipelined = 8
	var req strings.Builder
	for i := 0; i < pipelined; i++ {
		req.WriteString("get k\r\n")
	}
	req.WriteString("quit\r\n")
	if _, err := nc.Write([]byte(req.String())); err != nil {
		t.Fatal(err)
	}
	<-b.getEntered // mid-execBatch now

	// Race a graceful drain against the in-flight batch.
	done := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		done <- s.Shutdown(ctx)
	}()
	select {
	case err := <-done:
		t.Fatalf("Shutdown returned (%v) with the batch mid-exec", err)
	case <-time.After(100 * time.Millisecond):
	}

	close(b.blockGet)
	if err := <-done; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}

	// All queued replies arrived before the close, none dropped.
	nc.SetReadDeadline(time.Now().Add(2 * time.Second)) //nolint:errcheck
	buf := make([]byte, 64<<10)
	var out []byte
	sawEOF := false
	for {
		n, rerr := nc.Read(buf)
		out = append(out, buf[:n]...)
		if rerr != nil {
			sawEOF = true
			break
		}
	}
	if !sawEOF {
		t.Fatal("connection not closed after quit + drain")
	}
	if n := strings.Count(string(out), "END\r\n"); n != pipelined {
		t.Fatalf("quit-terminated batch got %d/%d replies before close:\n%q", n, pipelined, out)
	}
}
