// Kvstore: an embedded LSM key-value store (the paper's RocksDB stand-in)
// on a simulated HDD, with a ZNS-backed Region-Cache as its secondary
// cache — the §4.2 end-to-end setup as a library user would assemble it.
// Compares cold reads, cache-accelerated reads, and the no-cache baseline.
package main

import (
	"fmt"
	"log"
	"time"

	"znscache"
	"znscache/internal/workload"
)

const (
	keys  = 200_000
	reads = 30_000
)

func main() {
	fmt.Printf("LSM store on HDD: %d keys loaded, %d skewed reads\n\n", keys, reads)

	withCache := run(false)
	baseline := run(true)

	fmt.Printf("\nspeedup from the flash secondary cache: %.1fx\n",
		baseline.Seconds()/withCache.Seconds())
}

// run loads and reads the store, returning the simulated time of the read
// phase.
func run(disableSecondary bool) (readTime time.Duration) {
	kv, err := znscache.OpenKV(znscache.KVConfig{
		Scheme:           znscache.RegionCache,
		DisableSecondary: disableSecondary,
	})
	if err != nil {
		log.Fatalf("open kv: %v", err)
	}

	// Load phase: fillrandom-style inserts.
	fill := workload.NewFillRandom(keys, 64, 11)
	for {
		op, ok := fill.Next()
		if !ok {
			break
		}
		if err := kv.PutSized(op.Key, op.ValLen); err != nil {
			log.Fatalf("put: %v", err)
		}
	}
	if err := kv.Flush(); err != nil {
		log.Fatalf("flush: %v", err)
	}

	// Read phase: skewed readrandom.
	gen := workload.NewExpRange(keys, 25, 13)
	start := kv.SimulatedTime()
	for i := 0; i < reads; i++ {
		if _, ok, err := kv.Get(workload.KeyName(gen.Next())); err != nil {
			log.Fatalf("get: %v", err)
		} else if !ok {
			log.Fatalf("loaded key missing")
		}
	}
	readTime = kv.SimulatedTime() - start

	st := kv.Stats()
	label := "with Region-Cache"
	if disableSecondary {
		label = "no secondary cache"
	}
	fmt.Printf("%-20s reads took %8v  (p50 %v, p99 %v)\n", label, readTime, st.GetP50, st.GetP99)
	fmt.Printf("%-20s DRAM block-cache hit %.1f%%, disk reads %d\n", "", st.BlockCacheHit*100, st.DiskReads)
	if st.CacheStats != nil {
		fmt.Printf("%-20s flash cache: hit %.1f%% over %d lookups, WAF %.2f\n",
			"", st.SecondaryHitRatio*100, st.SecondaryLookups, st.CacheStats.WriteAmplification)
	}
	return readTime
}
