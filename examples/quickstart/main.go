// Quickstart: open a Region-Cache (the paper's middle-layer scheme) on a
// simulated ZNS SSD, store and fetch a few objects, and print the cache and
// device statistics.
package main

import (
	"fmt"
	"log"

	"znscache"
)

func main() {
	c, err := znscache.Open(znscache.Config{
		Scheme:      znscache.RegionCache,
		Zones:       25,        // 25 × 16 MiB simulated zones
		CacheBytes:  320 << 20, // 320 MiB cache; the rest is OP for zone GC
		TrackValues: true,      // keep payload bytes so Get returns real data
	})
	if err != nil {
		log.Fatalf("open cache: %v", err)
	}
	defer c.Close()

	// Store, fetch, overwrite, delete.
	if err := c.Set("user:1001", []byte(`{"name":"ada","plan":"pro"}`)); err != nil {
		log.Fatalf("set: %v", err)
	}
	val, ok, err := c.Get("user:1001")
	if err != nil || !ok {
		log.Fatalf("get: found=%v err=%v", ok, err)
	}
	fmt.Printf("user:1001 -> %s\n", val)

	c.Set("user:1001", []byte(`{"name":"ada","plan":"enterprise"}`))
	val, _, _ = c.Get("user:1001")
	fmt.Printf("user:1001 (updated) -> %s\n", val)

	c.Delete("user:1001")
	if _, ok, _ := c.Get("user:1001"); !ok {
		fmt.Println("user:1001 deleted")
	}

	// Fill past one region so data reaches the simulated device.
	for i := 0; i < 2000; i++ {
		key := fmt.Sprintf("obj:%05d", i)
		if err := c.Set(key, make([]byte, 4096)); err != nil {
			log.Fatalf("fill set: %v", err)
		}
	}
	for i := 0; i < 2000; i += 100 {
		if _, ok, err := c.Get(fmt.Sprintf("obj:%05d", i)); !ok || err != nil {
			log.Fatalf("fill get %d: found=%v err=%v", i, ok, err)
		}
	}

	st := c.Stats()
	fmt.Printf("\nscheme=%v items=%d hit=%.1f%% evictions=%d WAF=%.2f\n",
		st.Scheme, st.Items, st.HitRatio*100, st.Evictions, st.WriteAmplification)
	fmt.Printf("get p50=%v p99=%v, simulated time %v\n", st.GetP50, st.GetP99, st.SimulatedTime)
}
