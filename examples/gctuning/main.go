// Gctuning: explores the Region-Cache middle layer's GC knobs — the empty-
// zone watermark and the victim valid-ratio threshold — which the paper
// explicitly leaves open ("the GC threshold and the zone selection
// threshold are configurable... Exploring the thresholds can be the future
// work", §3.3). Also demonstrates the §3.4 co-design: letting zone GC drop
// cold regions instead of migrating them.
package main

import (
	"fmt"
	"log"

	"znscache/internal/cache"
	"znscache/internal/flash"
	"znscache/internal/harness"
	"znscache/internal/middle"
	"znscache/internal/workload"
	"znscache/internal/zns"
)

const (
	zones      = 20
	regionSize = 256 << 10
	cacheBytes = int64(zones-5) * 16 << 20 // tight: GC under real pressure
	ops        = 600_000
)

func main() {
	fmt.Println("Region-Cache GC threshold exploration (the paper's future work)")
	fmt.Println("engine uses access-ordered (LRU) region eviction, which scatters")
	fmt.Println("region deaths across zones and puts the zone GC under pressure")
	fmt.Printf("device %d zones, cache %d MiB, %d ops\n\n", zones, cacheBytes>>20, ops)

	fmt.Printf("%-28s %10s %8s %10s %10s\n", "configuration", "ops/s", "WAF", "migrated", "hit")
	for _, cfg := range []struct {
		label     string
		minEmpty  int
		threshold float64
	}{
		{"watermark=2  victim<=20%", 2, 0.20},
		{"watermark=4  victim<=20%", 4, 0.20},
		{"watermark=8  victim<=20%", 8, 0.20},
		{"watermark=4  victim<=50%", 4, 0.50},
		{"watermark=4  victim<=80%", 4, 0.80},
	} {
		runConfig(cfg.label, cfg.minEmpty, cfg.threshold, false)
	}

	fmt.Println("\nCo-design (§3.4): GC consults the cache and drops cold regions")
	runCoDesign(false)
	runCoDesign(true)
}

func buildLayer(minEmpty int, threshold float64, eng **cache.Cache, coDesign bool) (*middle.Layer, error) {
	hw := harness.DefaultHW(zones)
	dev, err := zns.New(zns.Config{
		Geometry:      hw.Geometry(),
		Timing:        flash.DefaultTiming(),
		BlocksPerZone: hw.BlocksPerZone,
	})
	if err != nil {
		return nil, err
	}
	mcfg := middle.Config{
		RegionSize:       regionSize,
		NumRegions:       int(cacheBytes / regionSize),
		OpenZones:        2,
		MinEmptyZones:    minEmpty,
		VictimValidRatio: threshold,
	}
	if coDesign {
		mcfg.DropFilter = func(id int) bool {
			return *eng != nil && (*eng).RegionDroppable(id, 0.3)
		}
		mcfg.OnDrop = func(id int) {
			if *eng != nil {
				(*eng).InvalidateRegion(id)
			}
		}
	}
	return middle.New(dev, mcfg)
}

func drive(eng *cache.Cache) {
	gen := workload.NewBC(workload.BCConfig{Keys: 96 << 10, Seed: 3})
	for i := 0; i < ops; i++ {
		op := gen.Next()
		switch op.Kind {
		case workload.OpGet:
			if _, ok, _ := eng.Get(op.Key); !ok {
				eng.Set(op.Key, nil, op.ValLen) //nolint:errcheck
			}
		case workload.OpSet:
			eng.Set(op.Key, nil, op.ValLen) //nolint:errcheck
		case workload.OpDelete:
			eng.Delete(op.Key)
		}
	}
}

func runConfig(label string, minEmpty int, threshold float64, coDesign bool) {
	var eng *cache.Cache
	layer, err := buildLayer(minEmpty, threshold, &eng, coDesign)
	if err != nil {
		log.Fatalf("%s: %v", label, err)
	}
	eng, err = cache.New(cache.Config{Store: layer, Policy: cache.LRU})
	if err != nil {
		log.Fatalf("%s: engine: %v", label, err)
	}
	drive(eng)
	st := eng.Stats()
	fmt.Printf("%-28s %10.0f %8.2f %10d %9.1f%%\n",
		label, float64(ops)/st.SimulatedTime.Seconds(), layer.WA.Factor(),
		layer.Migrated.Load(), st.HitRatio*100)
}

func runCoDesign(enabled bool) {
	label := "migrate-all GC (baseline)"
	if enabled {
		label = "co-design GC (drop cold)"
	}
	var eng *cache.Cache
	layer, err := buildLayer(2, 0.20, &eng, enabled)
	if err != nil {
		log.Fatalf("%s: %v", label, err)
	}
	eng, err = cache.New(cache.Config{Store: layer, Policy: cache.LRU})
	if err != nil {
		log.Fatalf("%s: engine: %v", label, err)
	}
	drive(eng)
	st := eng.Stats()
	fmt.Printf("%-28s WAF=%.2f migrated=%d dropped=%d hit=%.1f%% ops/s=%.0f\n",
		label, layer.WA.Factor(), layer.Migrated.Load(), layer.Dropped.Load(),
		st.HitRatio*100, float64(ops)/st.SimulatedTime.Seconds())
}
