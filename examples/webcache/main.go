// Webcache: a CDN-style photo cache (the workload class the paper's
// introduction motivates — write-intensive, skewed, high utilization) run
// against all four schemes on identical simulated hardware. Prints the
// throughput / hit-ratio / write-amplification tradeoff of Figure 2 from a
// user's point of view.
package main

import (
	"fmt"
	"log"

	"znscache"
	"znscache/internal/workload"
)

const (
	zones      = 25
	cacheBytes = 320 << 20
	requests   = 300_000
	photos     = 48 << 10 // photo catalogue size (working set > cache)
)

func main() {
	fmt.Printf("photo CDN cache: %d requests over %d photos, %d MiB cache\n\n",
		requests, photos, cacheBytes>>20)
	fmt.Printf("%-14s %10s %10s %8s %12s\n", "scheme", "req/s", "hit", "WAF", "p99")

	for _, scheme := range []znscache.Scheme{
		znscache.RegionCache, znscache.ZoneCache,
		znscache.FileCache, znscache.BlockCache,
	} {
		runScheme(scheme)
	}

	fmt.Println("\nNote: req/s is simulated-time throughput on identical flash;")
	fmt.Println("Zone-Cache trades throughput for zero WA and the largest cache.")
}

func runScheme(scheme znscache.Scheme) {
	c, err := znscache.Open(znscache.Config{
		Scheme:     scheme,
		Zones:      zones,
		CacheBytes: cacheBytes,
	})
	if err != nil {
		log.Fatalf("open %v: %v", scheme, err)
	}
	defer c.Close()

	// Photo popularity is zipfian; a photo is fetched (cache read-through)
	// far more often than re-encoded (write) or invalidated (delete).
	gen := workload.NewBC(workload.BCConfig{
		Keys:         photos,
		GetPct:       80,
		SetPct:       15,
		DelPct:       5,
		ValueSizes:   []int{8 << 10, 32 << 10, 128 << 10}, // thumbnails to originals
		ValueWeights: []int{60, 30, 10},
		Seed:         7,
	})
	for i := 0; i < requests; i++ {
		op := gen.Next()
		switch op.Kind {
		case workload.OpGet:
			if _, ok, err := c.Get(op.Key); err != nil {
				log.Fatalf("%v get: %v", scheme, err)
			} else if !ok {
				// Miss: fetch from origin and cache the photo.
				if err := c.SetSized(op.Key, op.ValLen); err != nil {
					log.Fatalf("%v fill: %v", scheme, err)
				}
			}
		case workload.OpSet:
			if err := c.SetSized(op.Key, op.ValLen); err != nil {
				log.Fatalf("%v set: %v", scheme, err)
			}
		case workload.OpDelete:
			c.Delete(op.Key)
		}
	}

	st := c.Stats()
	reqPerSec := float64(requests) / st.SimulatedTime.Seconds()
	fmt.Printf("%-14v %10.0f %9.1f%% %8.2f %12v\n",
		scheme, reqPerSec, st.HitRatio*100, st.WriteAmplification, st.GetP99)
}
