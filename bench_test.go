package znscache

// Benchmark harness: one benchmark per table and figure in the paper's
// evaluation, plus ablations for the design choices DESIGN.md calls out.
//
// These benchmarks measure *simulated* performance: each iteration replays
// a whole experiment on the virtual clock and reports the simulation's
// outputs (throughput, hit ratio, write amplification) as custom metrics.
// Wall-clock ns/op indicates how fast the simulator itself runs. Run a
// single replay of everything with:
//
//	go test -bench=. -benchtime=1x -benchmem
//
// EXPERIMENTS.md records a reference run against the paper's numbers.

import (
	"fmt"
	"sync/atomic"
	"testing"

	"znscache/internal/cache"
	"znscache/internal/harness"
	"znscache/internal/sim"
	"znscache/internal/workload"
)

// benchFig2Params shrinks Figure 2 to benchmark-friendly size while keeping
// every ratio (25 zones, 20/25 cache, working set > cache).
func benchFig2Params() harness.Fig2Params {
	return harness.Fig2Params{
		Zones: 25, Keys: 72 << 10, WarmupOps: 300_000, MeasureOps: 200_000, Seed: 1,
	}
}

func BenchmarkFig2OverallComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := harness.RunFig2(benchFig2Params())
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			b.ReportMetric(r.OpsPerSec, fmt.Sprintf("%s_ops/s", r.Scheme))
			b.ReportMetric(r.HitRatio*100, fmt.Sprintf("%s_hit%%", r.Scheme))
		}
	}
}

func BenchmarkFig3RegionFillTimes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := harness.RunFig3(harness.Fig3Params{
			Zones: 25, ValueLen: 4096, RegionsAfterOnset: 20, Seed: 2,
		})
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			name := "small"
			if r.RegionBytes > 1<<20 {
				name = "large"
			}
			b.ReportMetric(float64(r.MeanBefore.Microseconds()), name+"_fill_pre_us")
			b.ReportMetric(float64(r.MeanAfter.Microseconds()), name+"_fill_post_us")
		}
	}
}

func benchFig4Params() harness.Fig4Params {
	// The CLI defaults: warmup must exceed cache capacity so eviction and
	// zone GC reach steady state (see DefaultFig4).
	return harness.DefaultFig4()
}

func BenchmarkFig4OPSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := harness.RunFig4Table1(benchFig4Params())
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			label := fmt.Sprintf("%s_op%.0f", r.Scheme, r.OPRatio*100)
			b.ReportMetric(r.Result.OpsPerSec, label+"_ops/s")
			b.ReportMetric(r.Result.HitRatio*100, label+"_hit%")
		}
	}
}

func BenchmarkTable1WAFactors(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := harness.RunFig4Table1(benchFig4Params())
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			b.ReportMetric(r.Result.WAFactor,
				fmt.Sprintf("%s_op%.0f_WAF", r.Scheme, r.OPRatio*100))
		}
	}
}

func benchFig5Params() harness.Fig5Params {
	p := harness.DefaultFig5()
	p.Keys = 400_000
	p.Reads = 60_000
	return p
}

func BenchmarkFig5RocksDBSecondaryCache(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := harness.RunFig5(benchFig5Params())
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			label := fmt.Sprintf("%s_er%.0f", r.Scheme, r.ER)
			b.ReportMetric(r.OpsPerSec, label+"_ops/s")
			b.ReportMetric(r.SecondaryHitRatio*100, label+"_hit%")
		}
	}
}

func BenchmarkTable2ZoneCacheSizes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := harness.RunTable2(benchFig5Params())
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			b.ReportMetric(r.OpsPerSec, fmt.Sprintf("zones%d_ops/s", r.Zones))
			b.ReportMetric(r.HitRatio*100, fmt.Sprintf("zones%d_hit%%", r.Zones))
		}
	}
}

func BenchmarkSmallZoneHypothesis(b *testing.B) {
	for i := 0; i < b.N; i++ {
		p := harness.DefaultSmallZone()
		p.WarmupOps, p.MeasureOps = 300_000, 200_000
		rows, err := harness.RunSmallZone(p)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			label := fmt.Sprintf("zone%dMiB", r.ZoneMiB)
			if r.ZoneMiB == 0 {
				label = "region_ref"
			}
			b.ReportMetric(r.Result.OpsPerSec, label+"_ops/s")
		}
	}
}

// --- Ablations (DESIGN.md §5) ---

// ablationRun drives the bc mix on a Region-Cache rig and reports
// throughput, hit, and WAF.
func ablationRun(b *testing.B, label string, mutate func(*harness.RigConfig)) {
	b.Helper()
	hw := harness.DefaultHW(25)
	cfg := harness.RigConfig{
		Scheme:     harness.RegionCache,
		HW:         hw,
		CacheBytes: int64(hw.Zones) * hw.ZoneBytes() * 20 / 25,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	rig, err := harness.Build(cfg)
	if err != nil {
		b.Fatal(err)
	}
	res := harness.RunBC(rig, 72<<10, 250_000, 150_000, 1)
	b.ReportMetric(res.OpsPerSec, label+"_ops/s")
	b.ReportMetric(res.HitRatio*100, label+"_hit%")
	b.ReportMetric(res.WAFactor, label+"_WAF")
}

func BenchmarkAblationRegionSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		// 256 KiB up to the full zone (the 64-slot bitmap bounds the
		// smallest usable region at zone/64).
		for _, rs := range []int64{256 << 10, 1 << 20, 4 << 20, 16 << 20} {
			rs := rs
			ablationRun(b, fmt.Sprintf("region%dKiB", rs>>10), func(c *harness.RigConfig) {
				c.RegionBytes = rs
			})
		}
	}
}

func BenchmarkAblationPolicy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ablationRun(b, "fifo", func(c *harness.RigConfig) {
			c.Policy, c.PolicySet = cache.FIFO, true
		})
		ablationRun(b, "lru", func(c *harness.RigConfig) {
			c.Policy, c.PolicySet = cache.LRU, true
		})
	}
}

func BenchmarkAblationCoDesign(b *testing.B) {
	for i := 0; i < b.N; i++ {
		// Access-ordered eviction scatters deaths, giving GC real work for
		// the co-design to save.
		ablationRun(b, "migrate_all", func(c *harness.RigConfig) {
			c.Policy, c.PolicySet = cache.LRU, true
		})
		ablationRun(b, "codesign_drop", func(c *harness.RigConfig) {
			c.Policy, c.PolicySet = cache.LRU, true
			c.CoDesign = true
		})
	}
}

func BenchmarkAblationAdmission(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ablationRun(b, "admit_all", nil)
		ablationRun(b, "admit_p50", func(c *harness.RigConfig) {
			c.Admission = cache.NewProbAdmit(0.5, 9)
		})
		ablationRun(b, "reject_first", func(c *harness.RigConfig) {
			c.Admission = cache.NewRejectFirstAdmit(1<<20, 1<<20)
		})
	}
}

func BenchmarkAblationReinsertion(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ablationRun(b, "no_reinsert", nil)
		ablationRun(b, "reinsert_hits2", func(c *harness.RigConfig) {
			c.ReinsertHits = 2
		})
	}
}

func BenchmarkAblationGCThresholds(b *testing.B) {
	// Covered in depth by examples/gctuning; here the watermark sweep runs
	// through the public facade at one OP point.
	for i := 0; i < b.N; i++ {
		for _, op := range []float64{0.10, 0.20, 0.30} {
			op := op
			ablationRun(b, fmt.Sprintf("op%.0f", op*100), func(c *harness.RigConfig) {
				hw := harness.DefaultHW(25)
				c.CacheBytes = int64(float64(int64(hw.Zones)*hw.ZoneBytes()) * (1 - op))
				c.OPRatio = op
			})
		}
	}
}

// --- Simulator micro-benchmarks (real wall-clock costs) ---

// BenchmarkShardedScaling measures simulator throughput of the concurrent
// frontend as the shard count grows, at constant total capacity (96 zones
// split across shards) under parallel clients. On a multi-core machine
// ops/s should scale near-linearly 1→4 shards because shards share no
// locks, clocks, or stores; on a single core all points collapse to the
// serial cost plus sharding overhead. EXPERIMENTS.md records a run.
func BenchmarkShardedScaling(b *testing.B) {
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			c, err := OpenSharded(ShardedConfig{
				Config: Config{Zones: 96},
				Shards: shards,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer c.Close()
			keys := make([]string, 8192)
			for i := range keys {
				keys[i] = fmt.Sprintf("key-%08d", i)
				if err := c.SetSized(keys[i], 4096); err != nil {
					b.Fatal(err)
				}
			}
			var goroutineID atomic.Uint64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				rng := sim.NewRand(goroutineID.Add(1))
				i := 0
				for pb.Next() {
					k := keys[rng.Intn(len(keys))]
					if i%4 == 0 {
						c.SetSized(k, 4096) //nolint:errcheck
					} else {
						c.Get(k) //nolint:errcheck
					}
					i++
				}
			})
		})
	}
}

func BenchmarkEngineSetGet(b *testing.B) {
	c, err := Open(Config{Zones: 12})
	if err != nil {
		b.Fatal(err)
	}
	keys := make([]string, 4096)
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%08d", i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := keys[i%len(keys)]
		if i%3 == 0 {
			c.SetSized(k, 4096) //nolint:errcheck
		} else {
			c.Get(k) //nolint:errcheck
		}
	}
}

func BenchmarkZipfNext(b *testing.B) {
	z := workload.NewZipf(1<<20, 0.99, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		z.Next()
	}
}

func BenchmarkBCGeneratorNext(b *testing.B) {
	gen := workload.NewBC(workload.BCConfig{Keys: 1 << 20, Seed: 1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gen.Next()
	}
}
