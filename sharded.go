package znscache

import (
	"fmt"
	"sync/atomic"
	"time"

	"znscache/internal/cache"
	"znscache/internal/harness"
)

// ShardedConfig describes a sharded cache: a base Config plus the shard
// count. The simulated hardware and the cache capacity are partitioned
// across shards — each shard owns Zones/Shards zones and CacheBytes/Shards
// bytes of an independent device stack — so the total footprint matches a
// single-engine cache of the same Config while operations on different
// shards run concurrently.
type ShardedConfig struct {
	Config
	// Shards is the number of independent engines (default 4). Zones must
	// split into at least one zone per shard.
	Shards int
}

// ShardedCache is the concurrent frontend: Config's capacity split across
// Shards independent engines, each with its own virtual clock, device stack,
// and mutex. All methods are safe for concurrent use. Keys are partitioned
// by hash, so a key always lands on the same shard; per-shard determinism is
// preserved (see cache.Sharded).
type ShardedCache struct {
	sh   *cache.Sharded
	rigs []*harness.Rig
	// cfg is retained so Reopen can rebuild per-shard engines with the same
	// policy, value tracking, and admission seeds.
	cfg ShardedConfig
	// snaps holds the per-shard recovery snapshots captured by Close.
	snaps [][]byte
	// closed is atomic because the network serving layer checks it from
	// many connection goroutines while Close runs on the shutdown path.
	closed atomic.Bool
}

// OpenSharded builds a sharded cache per cfg.
func OpenSharded(cfg ShardedConfig) (*ShardedCache, error) {
	if cfg.Shards == 0 {
		cfg.Shards = 4
	}
	if cfg.Shards < 1 {
		return nil, fmt.Errorf("znscache: invalid shard count %d", cfg.Shards)
	}
	if cfg.Zones == 0 {
		cfg.Zones = 24
	}
	zonesPerShard := cfg.Zones / cfg.Shards
	if zonesPerShard < 1 {
		return nil, fmt.Errorf("znscache: %d zones cannot split across %d shards",
			cfg.Zones, cfg.Shards)
	}

	shardCfg := cfg.Config
	shardCfg.Zones = zonesPerShard
	if cfg.CacheBytes != 0 {
		shardCfg.CacheBytes = cfg.CacheBytes / int64(cfg.Shards)
	}

	c := &ShardedCache{rigs: make([]*harness.Rig, cfg.Shards), cfg: cfg}
	engines := make([]*cache.Cache, cfg.Shards)
	for i := range engines {
		// Each shard's admission policy instance is built by the shared
		// factory with a shard-decorrelated seed: independent instances fix
		// the cross-shard data race, the derived seeds keep replays
		// deterministic per shard.
		shardCfg.AdmissionSeed = cache.ShardSeed(cfg.AdmissionSeed, i)
		single, err := Open(shardCfg)
		if err != nil {
			return nil, fmt.Errorf("znscache: shard %d: %w", i, err)
		}
		c.rigs[i] = single.rig
		engines[i] = single.rig.Engine
	}
	sh, err := cache.NewSharded(engines)
	if err != nil {
		return nil, err
	}
	c.sh = sh
	return c, nil
}

// NumShards returns the shard count.
func (c *ShardedCache) NumShards() int { return c.sh.NumShards() }

// ShardFor returns the shard index key maps to.
func (c *ShardedCache) ShardFor(key string) int { return c.sh.ShardFor(key) }

// Rig exposes shard i's scheme assembly for inspection. The returned value
// shares state with the cache and is not synchronized against concurrent
// operations.
func (c *ShardedCache) Rig(i int) *harness.Rig { return c.rigs[i] }

// ShardNow returns the current simulated time of the shard owning key — the
// clock every TTL on that shard is measured against. It satisfies the
// serving layer's ShardClocked extension so absolute memcached exptimes
// resolve on the shard clock rather than the wall clock.
func (c *ShardedCache) ShardNow(key string) time.Duration {
	return c.rigs[c.sh.ShardFor(key)].Clock.Now()
}

// Set inserts or replaces key with value.
func (c *ShardedCache) Set(key string, value []byte) error {
	if c.closed.Load() {
		return ErrClosed
	}
	return c.sh.Set(key, value, 0)
}

// SetSized inserts or replaces key with a metadata-only value of n bytes.
func (c *ShardedCache) SetSized(key string, n int) error {
	if c.closed.Load() {
		return ErrClosed
	}
	return c.sh.Set(key, nil, n)
}

// SetWithTTL inserts key with a time-to-live measured on the owning shard's
// simulated clock.
func (c *ShardedCache) SetWithTTL(key string, value []byte, ttl time.Duration) error {
	if c.closed.Load() {
		return ErrClosed
	}
	return c.sh.SetTTL(key, value, 0, ttl)
}

// Get returns the value for key. With TrackValues off, the returned slice
// is nil even on a hit.
func (c *ShardedCache) Get(key string) ([]byte, bool, error) {
	if c.closed.Load() {
		return nil, false, ErrClosed
	}
	return c.sh.Get(key)
}

// Contains reports whether key is cached (TTL-expired items count as
// absent), without recency side effects.
func (c *ShardedCache) Contains(key string) bool {
	if c.closed.Load() {
		return false
	}
	return c.sh.Contains(key)
}

// Delete removes key; it reports whether the key was present.
func (c *ShardedCache) Delete(key string) bool {
	if c.closed.Load() {
		return false
	}
	return c.sh.Delete(key)
}

// Len returns the number of cached items across all shards.
func (c *ShardedCache) Len() int { return c.sh.Len() }

// ExecShard runs fn against shard i's engine under that shard's write lock,
// with the lock-free read path's deferred notes drained first. It is the
// batch-dispatch hook the serving layer uses to apply a whole group of
// mutations for one shard in a single critical section. fn must not retain
// the engine past its return; returns ErrClosed without running fn on a
// closed cache.
func (c *ShardedCache) ExecShard(i int, fn func(*cache.Cache)) error {
	if c.closed.Load() {
		return ErrClosed
	}
	c.sh.WithShard(i, fn)
	return nil
}

// Drain completes all in-flight flushes on every shard.
func (c *ShardedCache) Drain() { c.sh.Drain() }

// Stats merges all shards into one snapshot: counters sum, latency
// histograms merge exactly, and write amplification is the host-byte
// weighted mean across shards (each shard amplifies its own write stream).
// SimulatedTime is the furthest shard clock — the makespan of a parallel
// replay.
func (c *ShardedCache) Stats() Stats {
	ms := c.sh.Stats()
	out := Stats{
		Scheme:        c.rigs[0].Scheme,
		Items:         c.sh.Len(),
		HitRatio:      ms.HitRatio,
		Hits:          ms.Hits,
		Misses:        ms.Misses,
		Sets:          ms.Sets,
		Deletes:       ms.Deletes,
		Evictions:     ms.Evictions,
		AdmitRejects:  ms.AdmitRejects,
		GetP50:        ms.GetLatency.P50,
		GetP99:        ms.GetLatency.P99,
		SimulatedTime: ms.SimulatedTime,
	}
	var hostTotal float64
	var waSum float64
	for i, rig := range c.rigs {
		host := float64(c.sh.ShardStats(i).HostWriteBytes)
		hostTotal += host
		waSum += rig.WAFactor() * host
	}
	if hostTotal > 0 {
		out.WriteAmplification = waSum / hostTotal
	} else {
		out.WriteAmplification = 1
	}
	return out
}

// SimulatedTime returns the furthest shard clock.
func (c *ShardedCache) SimulatedTime() time.Duration {
	var max time.Duration
	for _, rig := range c.rigs {
		if t := rig.Clock.Now(); t > max {
			max = t
		}
	}
	return max
}

// Close drains every shard, captures one recovery snapshot per shard, and
// marks the cache closed. This is the persistent-cache shutdown contract
// (CacheLib serializes its index and region metadata at shutdown): the
// snapshots describe everything needed to re-attach to the still-populated
// simulated devices, and Reopen performs that warm roll. Stop traffic before
// calling Close — operations racing it can land after their shard's cut and
// be forgotten by the successor (they are not corrupted, merely lost, the
// same asymmetry the crash harness verifies).
//
// Close is idempotent; only the first call snapshots.
func (c *ShardedCache) Close() error {
	if !c.closed.CompareAndSwap(false, true) {
		return nil
	}
	snaps, err := c.sh.Snapshot()
	if err != nil {
		return fmt.Errorf("znscache: close snapshot: %w", err)
	}
	c.snaps = snaps
	return nil
}

// Snapshots returns the per-shard recovery snapshots Close captured (nil
// before Close). The slices are the cache's own; treat them as read-only.
func (c *ShardedCache) Snapshots() [][]byte { return c.snaps }

// Reopen warm-rolls a closed cache: every shard engine is rebuilt from the
// snapshot Close captured, over the same simulated device stacks, whose
// regions still hold the data — the restart a persistent cache exists to
// survive. The returned cache serves the snapshot's contents (open-region
// buffers are DRAM and are dropped, as on a real restart); the receiver
// stays closed and should be discarded.
func (c *ShardedCache) Reopen() (*ShardedCache, error) {
	if !c.closed.Load() {
		return nil, fmt.Errorf("znscache: Reopen needs a closed cache (call Close first)")
	}
	if c.snaps == nil {
		return nil, fmt.Errorf("znscache: no snapshots to reopen from (Close failed?)")
	}
	nc := &ShardedCache{rigs: c.rigs, cfg: c.cfg}
	engines := make([]*cache.Cache, len(c.rigs))
	for i, rig := range c.rigs {
		cc := cache.Config{
			Store:        rig.Store,
			Clock:        rig.Clock,
			TrackValues:  c.cfg.TrackValues,
			ReadIndex:    c.cfg.FastReads,
			ReinsertHits: c.cfg.ReinsertHits,
			Spans:        c.cfg.Spans,
		}
		// Mirror harness.Build's policy defaulting: the Navy-faithful FIFO
		// unless the configuration explicitly chose one.
		cc.Policy = cache.FIFO
		if c.cfg.PolicySet {
			cc.Policy = c.cfg.Policy
		}
		if c.cfg.Admission != nil {
			cc.AdmissionFactory = c.cfg.Admission
			cc.AdmissionSeed = cache.ShardSeed(c.cfg.AdmissionSeed, i)
		}
		eng, err := cache.Restore(cc, c.snaps[i])
		if err != nil {
			return nil, fmt.Errorf("znscache: shard %d reopen: %w", i, err)
		}
		rig.Engine = eng
		engines[i] = eng
	}
	sh, err := cache.NewSharded(engines)
	if err != nil {
		return nil, err
	}
	nc.sh = sh
	return nc, nil
}
