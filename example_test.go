package znscache_test

import (
	"fmt"
	"time"

	"znscache"
)

// ExampleOpen shows basic cache usage on the paper's Region-Cache scheme.
func ExampleOpen() {
	c, err := znscache.Open(znscache.Config{
		Scheme:      znscache.RegionCache,
		Zones:       12,
		TrackValues: true,
	})
	if err != nil {
		panic(err)
	}
	defer c.Close()

	c.Set("greeting", []byte("hello, zoned world"))
	val, ok, _ := c.Get("greeting")
	fmt.Println(ok, string(val))

	c.Delete("greeting")
	_, ok, _ = c.Get("greeting")
	fmt.Println(ok)
	// Output:
	// true hello, zoned world
	// false
}

// ExampleCache_SetWithTTL shows expiry on the simulated clock.
func ExampleCache_SetWithTTL() {
	c, _ := znscache.Open(znscache.Config{Zones: 8, TrackValues: true})
	defer c.Close()

	c.SetWithTTL("session", []byte("token"), 30*time.Second)
	_, ok, _ := c.Get("session")
	fmt.Println("before expiry:", ok)

	// Advance simulated time past the TTL (no real sleeping).
	c.Rig().Clock.Advance(time.Minute)
	_, ok, _ = c.Get("session")
	fmt.Println("after expiry:", ok)
	// Output:
	// before expiry: true
	// after expiry: false
}

// ExampleOpenKV shows the LSM store with a flash secondary cache.
func ExampleOpenKV() {
	kv, err := znscache.OpenKV(znscache.KVConfig{
		Scheme:      znscache.ZoneCache,
		StoreValues: true,
	})
	if err != nil {
		panic(err)
	}
	kv.Put("user:1", []byte("ada"))
	kv.Put("user:2", []byte("grace"))
	kv.Flush()

	kv.Scan("user:", "user;", func(k string, v []byte) bool {
		fmt.Println(k, string(v))
		return true
	})
	// Output:
	// user:1 ada
	// user:2 grace
}
