package znscache

import (
	"time"

	"znscache/internal/harness"
	"znscache/internal/hdd"
	"znscache/internal/lsm"
)

// KVConfig describes an embedded LSM key-value store (the paper's RocksDB
// stand-in) backed by a simulated HDD, with one of the four cache schemes
// as its flash secondary cache (§4.2).
type KVConfig struct {
	// Scheme picks the secondary-cache design (default RegionCache).
	Scheme Scheme
	// CacheZones sizes the flash cache in zones (default 5, the paper's
	// ~5 GiB at scale). Zone size follows the Figure 5 profile (8 MiB).
	CacheZones int
	// DRAMCacheBytes is the block-cache size (default 512 KiB — the
	// paper's 32 MiB at scale).
	DRAMCacheBytes int64
	// DiskBytes is the backing disk capacity (default 64 GiB).
	DiskBytes int64
	// StoreValues keeps payloads so Get returns real bytes.
	StoreValues bool
	// DisableSecondary runs the DB with no flash cache (baseline).
	DisableSecondary bool
}

// KV is an LSM store with a flash secondary cache, sharing one virtual
// clock across the DB, the cache, and both devices.
type KV struct {
	db    *lsm.DB
	cache *Cache
	sec   *harness.EngineSecondary
}

// OpenKV builds the store.
func OpenKV(cfg KVConfig) (*KV, error) {
	if cfg.CacheZones == 0 {
		cfg.CacheZones = 5
	}
	if cfg.DRAMCacheBytes == 0 {
		cfg.DRAMCacheBytes = 512 << 10
	}
	if cfg.DiskBytes == 0 {
		cfg.DiskBytes = 64 << 30
	}

	kv := &KV{}
	lcfg := lsm.Config{
		Disk:            hdd.New(hdd.Config{Capacity: cfg.DiskBytes}),
		BlockCacheBytes: cfg.DRAMCacheBytes,
		StoreValues:     cfg.StoreValues,
	}
	if !cfg.DisableSecondary {
		p := harness.DefaultFig5()
		p.FlashCacheZones = cfg.CacheZones
		rig, err := harness.BuildFig5Rig(cfg.Scheme, p, nil)
		if err != nil {
			return nil, err
		}
		kv.cache = &Cache{rig: rig}
		kv.sec = &harness.EngineSecondary{Engine: rig.Engine}
		lcfg.Secondary = kv.sec
		lcfg.Clock = rig.Clock
	}
	db, err := lsm.Open(lcfg)
	if err != nil {
		return nil, err
	}
	kv.db = db
	return kv, nil
}

// Put inserts or updates a key.
func (kv *KV) Put(key string, value []byte) error {
	return kv.db.Put(key, value, 0)
}

// PutSized inserts a metadata-only value of n bytes.
func (kv *KV) PutSized(key string, n int) error {
	return kv.db.Put(key, nil, n)
}

// Get reads a key.
func (kv *KV) Get(key string) ([]byte, bool, error) {
	return kv.db.Get(key)
}

// Delete removes a key.
func (kv *KV) Delete(key string) error { return kv.db.Delete(key) }

// Flush forces the memtable to disk.
func (kv *KV) Flush() error { return kv.db.Flush() }

// Scan streams the live keys in [start, end) in order, calling fn for each
// until it returns false or the range ends. Empty end means unbounded.
func (kv *KV) Scan(start, end string, fn func(key string, value []byte) bool) error {
	it := kv.db.NewIterator(start, end)
	for it.Next() {
		if !fn(it.Key(), it.Value()) {
			break
		}
	}
	return it.Err()
}

// SimulatedTime returns the shared virtual clock position.
func (kv *KV) SimulatedTime() time.Duration { return kv.db.Clock().Now() }

// KVStats summarizes the DB and its cache hierarchy.
type KVStats struct {
	SecondaryHitRatio float64
	SecondaryLookups  uint64
	BlockCacheHit     float64
	DiskReads         uint64
	GetP50, GetP99    time.Duration
	CacheStats        *Stats // nil when the secondary cache is disabled
}

// Stats snapshots the hierarchy.
func (kv *KV) Stats() KVStats {
	st := KVStats{
		SecondaryHitRatio: kv.db.SecondaryHitRatio(),
		SecondaryLookups:  kv.db.SecondaryLookups.Load(),
		BlockCacheHit:     kv.db.BlockCacheHitRatio(),
		DiskReads:         kv.db.DiskReads.Load(),
		GetP50:            kv.db.GetLat.Percentile(0.5),
		GetP99:            kv.db.GetLat.Percentile(0.99),
	}
	if kv.cache != nil {
		cs := kv.cache.Stats()
		st.CacheStats = &cs
	}
	return st
}
