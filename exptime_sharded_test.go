package znscache

import (
	"context"
	"testing"
	"time"

	"znscache/internal/server"
)

// TestAbsoluteExptimeOnShardClockSharded drives the full serving stack — a
// ShardedCache behind the memcached server — and asserts absolute exptimes
// resolve on the per-shard simulated clocks (the ShardClocked extension and
// the dispatch path's exec-time resolution), not the wall clock. WallBase is
// pinned far from the test's real wall time, so any wall-clock reading
// produces wildly wrong TTLs the assertions would catch.
func TestAbsoluteExptimeOnShardClockSharded(t *testing.T) {
	base := time.Unix(1_800_000_000, 0)
	c, err := OpenSharded(ShardedConfig{
		Config: Config{Scheme: RegionCache, Zones: 8, TrackValues: true},
		Shards: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(server.Config{Backend: c, WallBase: base})
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve() //nolint:errcheck
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		srv.Shutdown(ctx) //nolint:errcheck
	}()
	cl, err := server.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close() //nolint:errcheck

	// Shard clocks start near zero: an exptime 1h past base is live.
	if _, err := cl.Set("live", 0, base.Unix()+3600, []byte("v")); err != nil {
		t.Fatal(err)
	}
	if r, _ := cl.Get("live"); !r.Hit {
		t.Fatal("absolute exptime 1h past WallBase missed with shard clocks at 0")
	}

	// An exptime before base is already expired regardless of shard time.
	if _, err := cl.Set("old", 0, base.Unix()-10, []byte("v")); err != nil {
		t.Fatal(err)
	}
	if r, _ := cl.Get("old"); r.Hit {
		t.Fatal("absolute exptime before WallBase stored as live")
	}

	// Advance every shard clock past the 1h deadline: a fresh set of the same
	// exptime must now be treated as expired on the shard clock — the wall
	// clock has moved only microseconds.
	for i := 0; i < c.NumShards(); i++ {
		c.Rig(i).Clock.Advance(2 * time.Hour)
	}
	if _, err := cl.Set("late", 0, base.Unix()+3600, []byte("v")); err != nil {
		t.Fatal(err)
	}
	if r, _ := cl.Get("late"); r.Hit {
		t.Fatal("shard-clock-expired absolute exptime stored as live")
	}
	// The earlier live key also expired as its shard clock crossed the
	// deadline — TTLs and absolute exptimes share one clock.
	if r, _ := cl.Get("live"); r.Hit {
		t.Fatal("key outlived its absolute exptime on the shard clock")
	}
}
