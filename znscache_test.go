package znscache

import (
	"bytes"
	"fmt"
	"testing"
)

func TestOpenAllSchemes(t *testing.T) {
	for _, s := range []Scheme{BlockCache, FileCache, ZoneCache, RegionCache} {
		c, err := Open(Config{Scheme: s, Zones: 12, TrackValues: true})
		if err != nil {
			t.Fatalf("Open(%v): %v", s, err)
		}
		want := []byte("hello zns")
		if err := c.Set("k", want); err != nil {
			t.Fatalf("%v Set: %v", s, err)
		}
		got, ok, err := c.Get("k")
		if err != nil || !ok || !bytes.Equal(got, want) {
			t.Fatalf("%v Get = (%q, %v, %v)", s, got, ok, err)
		}
		if !c.Contains("k") || c.Contains("absent") {
			t.Fatalf("%v Contains wrong", s)
		}
		if !c.Delete("k") {
			t.Fatalf("%v Delete failed", s)
		}
		st := c.Stats()
		if st.Scheme != s || st.Sets != 1 || st.Hits != 1 {
			t.Fatalf("%v stats = %+v", s, st)
		}
		if st.WriteAmplification < 1 {
			t.Fatalf("%v WA = %v", s, st.WriteAmplification)
		}
	}
}

func TestDefaultsApplied(t *testing.T) {
	c, err := Open(Config{})
	if err != nil {
		t.Fatalf("Open defaults: %v", err)
	}
	if c.rig.Scheme != RegionCache {
		t.Fatalf("default scheme = %v", c.rig.Scheme)
	}
	if err := c.SetSized("k", 1000); err != nil {
		t.Fatal(err)
	}
	if v, ok, err := c.Get("k"); err != nil || !ok || v != nil {
		t.Fatalf("metadata Get = (%v, %v, %v)", v, ok, err)
	}
}

func TestClosedCache(t *testing.T) {
	c, err := Open(Config{Zones: 8})
	if err != nil {
		t.Fatal(err)
	}
	c.Close()
	if err := c.Set("k", nil); err != ErrClosed {
		t.Fatalf("Set after close err = %v", err)
	}
	if _, _, err := c.Get("k"); err != ErrClosed {
		t.Fatalf("Get after close err = %v", err)
	}
	if c.Delete("k") || c.Contains("k") {
		t.Fatal("ops after close succeeded")
	}
}

func TestEvictionAndTimeAdvance(t *testing.T) {
	c, err := Open(Config{Scheme: RegionCache, Zones: 8})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40_000; i++ {
		if err := c.SetSized(fmt.Sprintf("key-%06d", i), 4096); err != nil {
			t.Fatal(err)
		}
	}
	st := c.Stats()
	if st.Evictions == 0 {
		t.Fatal("filling past capacity never evicted")
	}
	if c.SimulatedTime() == 0 {
		t.Fatal("virtual clock did not advance")
	}
	if st.Items >= 40_000 {
		t.Fatalf("Items = %d, want below insert count after eviction", st.Items)
	}
}

func TestKVWithSecondaryCache(t *testing.T) {
	kv, err := OpenKV(KVConfig{Scheme: RegionCache, StoreValues: true})
	if err != nil {
		t.Fatalf("OpenKV: %v", err)
	}
	if err := kv.Put("alpha", []byte("one")); err != nil {
		t.Fatal(err)
	}
	v, ok, err := kv.Get("alpha")
	if err != nil || !ok || string(v) != "one" {
		t.Fatalf("Get = (%q, %v, %v)", v, ok, err)
	}
	if err := kv.Flush(); err != nil {
		t.Fatal(err)
	}
	// Read through the hierarchy enough to exercise the secondary cache.
	for i := 0; i < 3000; i++ {
		kv.PutSized(fmt.Sprintf("key-%06d", i), 64)
	}
	kv.Flush()
	for i := 0; i < 3000; i++ {
		if _, ok, err := kv.Get(fmt.Sprintf("key-%06d", i)); err != nil || !ok {
			t.Fatalf("Get key-%06d = (%v, %v)", i, ok, err)
		}
	}
	st := kv.Stats()
	if st.SecondaryLookups == 0 {
		t.Fatal("secondary cache never consulted")
	}
	if st.CacheStats == nil {
		t.Fatal("cache stats missing")
	}
	if kv.SimulatedTime() == 0 {
		t.Fatal("clock did not advance")
	}
}

func TestKVWithoutSecondary(t *testing.T) {
	kv, err := OpenKV(KVConfig{DisableSecondary: true})
	if err != nil {
		t.Fatal(err)
	}
	kv.PutSized("k", 64)
	if _, ok, _ := kv.Get("k"); !ok {
		t.Fatal("Get missed")
	}
	if err := kv.Delete("k"); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := kv.Get("k"); ok {
		t.Fatal("deleted key visible")
	}
	if st := kv.Stats(); st.CacheStats != nil {
		t.Fatal("cache stats present without secondary")
	}
}

func TestKVScan(t *testing.T) {
	kv, err := OpenKV(KVConfig{DisableSecondary: true, StoreValues: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		kv.Put(fmt.Sprintf("key-%03d", i), []byte(fmt.Sprintf("v%d", i)))
	}
	kv.Flush()
	kv.Delete("key-025")
	var got []string
	if err := kv.Scan("key-020", "key-030", func(k string, v []byte) bool {
		got = append(got, k)
		if len(v) == 0 {
			t.Fatalf("empty value at %s", k)
		}
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 9 {
		t.Fatalf("scan returned %v, want 9 keys without key-025", got)
	}
	for _, k := range got {
		if k == "key-025" {
			t.Fatal("deleted key in scan")
		}
	}
	// Early termination.
	count := 0
	kv.Scan("", "", func(string, []byte) bool { count++; return count < 3 })
	if count != 3 {
		t.Fatalf("early-stop scan visited %d", count)
	}
}
