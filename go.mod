module znscache

go 1.22
