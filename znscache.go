// Package znscache is a simulation-backed reproduction of "Can ZNS SSDs be
// Better Storage Devices for Persistent Cache?" (Yang et al., HotStorage
// '24): a CacheLib-style log-structured flash cache that can run over four
// interchangeable backends — a regular block SSD (Block-Cache), an
// F2FS-like filesystem on a ZNS SSD (File-Cache), zones used directly as
// regions (Zone-Cache), and the paper's region→zone middle layer
// (Region-Cache).
//
// Every device is simulated (NAND array, FTL, zoned interface, filesystem,
// disk) on a deterministic virtual clock, so experiments measure simulated
// time, not wall-clock time. See DESIGN.md for the system inventory and
// EXPERIMENTS.md for the paper-versus-measured results.
//
// Quickstart:
//
//	c, err := znscache.Open(znscache.Config{
//		Scheme:     znscache.RegionCache,
//		Zones:      25,
//		CacheBytes: 320 << 20,
//	})
//	...
//	c.Set("user:42", []byte("profile-bytes"))
//	val, ok, err := c.Get("user:42")
package znscache

import (
	"errors"
	"time"

	"znscache/internal/cache"
	"znscache/internal/harness"
	"znscache/internal/obs"
)

// Scheme selects the cache backend design.
type Scheme = harness.Scheme

// The four schemes of the paper's Figure 1.
const (
	// BlockCache runs CacheLib-style regions on a regular (block) SSD.
	BlockCache = harness.BlockCache
	// FileCache runs regions in one large file on an F2FS-like filesystem
	// over a ZNS SSD.
	FileCache = harness.FileCache
	// ZoneCache maps one region to one zone: zero write amplification,
	// GC-free, full-capacity, but zone-sized regions.
	ZoneCache = harness.ZoneCache
	// RegionCache uses the paper's middle layer: flexible region size over
	// zones, with application-level GC.
	RegionCache = harness.RegionCache
)

// Policy selects region eviction order.
type Policy = cache.Policy

// AdmissionFactory builds per-engine admission policy instances; see
// package cache for the available factories (AdmitAllFactory,
// ProbAdmitFactory, RejectFirstFactory, DynamicRandomFactory,
// FrequencyFactory) and ParseAdmission for the bench-flag grammar.
type AdmissionFactory = cache.AdmissionFactory

// ParseAdmission turns an admission spec string ("all", "prob:0.5",
// "reject-first", "dynamic-random", "frequency", ...) into a factory; see
// cache.ParseAdmission.
func ParseAdmission(spec string, budgetBytesPerSec float64) (AdmissionFactory, error) {
	return cache.ParseAdmission(spec, budgetBytesPerSec)
}

// Eviction policies.
const (
	// FIFO evicts regions in allocation order (Navy's behaviour; default).
	FIFO = cache.FIFO
	// LRU evicts the least recently accessed region.
	LRU = cache.LRU
)

// Config describes the cache to open.
type Config struct {
	// Scheme picks the backend design (default RegionCache).
	Scheme Scheme
	// Zones sizes the simulated flash: Zones × ZoneMiB of capacity
	// (default 25 zones).
	Zones int
	// ZoneMiB is the zone size in MiB (default 16; must make the zone a
	// multiple of the region size).
	ZoneMiB int
	// CacheBytes is the cache capacity. For ZoneCache the value is rounded
	// down to whole zones; for the other schemes the gap between
	// CacheBytes and the device is over-provisioning (default: 80% of the
	// device).
	CacheBytes int64
	// RegionBytes is the region size for Block/File/Region schemes
	// (default 256 KiB; ZoneCache regions are zone-sized).
	RegionBytes int64
	// OPRatio is the device/filesystem over-provisioning for Block and
	// File schemes (default 0.20).
	OPRatio float64
	// Policy overrides the region eviction order when PolicySet is true;
	// otherwise the Navy-faithful default (FIFO, allocation order) is used.
	Policy    Policy
	PolicySet bool
	// CoDesign enables the §3.4 cache/GC co-design on RegionCache: zone GC
	// drops cold regions instead of migrating them.
	CoDesign bool
	// ReinsertHits enables hits-based reinsertion: items read at least this
	// many times are rewritten rather than dropped when their region is
	// evicted. Zero disables it.
	ReinsertHits uint8
	// TrackValues stores payload bytes so Get returns real data. Off, the
	// cache tracks only metadata (sizes, latencies, hit ratios) — the mode
	// benchmarks use to keep memory flat.
	TrackValues bool
	// FastReads enables the engine's lock-free read index: Gets on a warm
	// key are answered from an immutable DRAM copy without taking the shard
	// lock (see internal/cache readindex.go). Values returned by Get must
	// then be treated as read-only. Off by default so single-threaded
	// experiment replays keep the classic exact accounting; the network
	// serving layer turns it on.
	FastReads bool
	// Admission builds the engine's admission policy (nil admits
	// everything). A factory rather than an instance so OpenSharded can
	// build one independently-seeded instance per shard.
	Admission AdmissionFactory
	// AdmissionSeed seeds the admission policy instance; OpenSharded
	// decorrelates shards from it with cache.ShardSeed.
	AdmissionSeed uint64
	// Spans, when non-nil, samples wall-clock engine stage timings (fast vs
	// locked gets, set publish, region flush, store I/O) into the recorder
	// — the cache half of the serving layer's request-stage spans. Nil
	// disables sampling at the cost of one pointer test per site.
	Spans *obs.SpanRecorder
}

// Errors returned by the facade.
var (
	// ErrClosed is returned by operations on a closed cache.
	ErrClosed = errors.New("znscache: cache closed")
)

// Cache is a persistent cache instance over a simulated device stack.
// Methods are not safe for concurrent use: the simulation is driven
// single-threaded for determinism.
type Cache struct {
	rig    *harness.Rig
	closed bool
}

// Stats is a point-in-time summary of cache and device behaviour.
type Stats struct {
	// Scheme is the backend design in use.
	Scheme Scheme
	// Items currently indexed.
	Items int
	// HitRatio is hits/(hits+misses) over the cache's lifetime.
	HitRatio float64
	// Hits, Misses, Sets, Deletes, Evictions count operations.
	Hits, Misses, Sets, Deletes, Evictions uint64
	// AdmitRejects counts Sets the admission policy refused to write to
	// flash (always 0 without a Config.Admission policy).
	AdmitRejects uint64
	// WriteAmplification is the factor at the layer the paper reports:
	// device FTL for BlockCache, filesystem for FileCache, middle layer
	// for RegionCache, and identically 1 for ZoneCache.
	WriteAmplification float64
	// GetP50/GetP99 are simulated get latencies.
	GetP50, GetP99 time.Duration
	// SimulatedTime is the virtual clock position.
	SimulatedTime time.Duration
}

// Open builds a cache per cfg.
func Open(cfg Config) (*Cache, error) {
	if cfg.Zones == 0 {
		cfg.Zones = 25
	}
	hw := harness.DefaultHW(cfg.Zones)
	if cfg.ZoneMiB != 0 {
		hw.BlocksPerZone = cfg.ZoneMiB // 1 MiB blocks
	}
	if cfg.CacheBytes == 0 {
		cfg.CacheBytes = int64(cfg.Zones) * hw.ZoneBytes() * 8 / 10
	}
	rc := harness.RigConfig{
		Scheme:           cfg.Scheme,
		HW:               hw,
		CacheBytes:       cfg.CacheBytes,
		RegionBytes:      cfg.RegionBytes,
		OPRatio:          cfg.OPRatio,
		Policy:           cfg.Policy,
		PolicySet:        cfg.PolicySet,
		CoDesign:         cfg.CoDesign,
		ReinsertHits:     cfg.ReinsertHits,
		TrackValues:      cfg.TrackValues,
		ReadIndex:        cfg.FastReads,
		AdmissionFactory: cfg.Admission,
		AdmissionSeed:    cfg.AdmissionSeed,
		Spans:            cfg.Spans,
	}
	if cfg.Scheme == ZoneCache {
		rc.ZoneCount = int(cfg.CacheBytes / hw.ZoneBytes())
	}
	rig, err := harness.Build(rc)
	if err != nil {
		return nil, err
	}
	return &Cache{rig: rig}, nil
}

// Set inserts or replaces key with value.
func (c *Cache) Set(key string, value []byte) error {
	if c.closed {
		return ErrClosed
	}
	return c.rig.Engine.Set(key, value, 0)
}

// SetSized inserts or replaces key with a metadata-only value of n bytes
// (used when TrackValues is off).
func (c *Cache) SetSized(key string, n int) error {
	if c.closed {
		return ErrClosed
	}
	return c.rig.Engine.Set(key, nil, n)
}

// SetWithTTL inserts key with a time-to-live measured on the simulated
// clock; after ttl the item answers Get as a miss.
func (c *Cache) SetWithTTL(key string, value []byte, ttl time.Duration) error {
	if c.closed {
		return ErrClosed
	}
	return c.rig.Engine.SetTTL(key, value, 0, ttl)
}

// Get returns the value for key. With TrackValues off, the returned slice
// is nil even on a hit.
func (c *Cache) Get(key string) ([]byte, bool, error) {
	if c.closed {
		return nil, false, ErrClosed
	}
	return c.rig.Engine.Get(key)
}

// Contains reports whether key is cached, without recency side effects.
func (c *Cache) Contains(key string) bool {
	if c.closed {
		return false
	}
	return c.rig.Engine.Contains(key)
}

// Delete removes key; it reports whether the key was present.
func (c *Cache) Delete(key string) bool {
	if c.closed {
		return false
	}
	return c.rig.Engine.Delete(key)
}

// Len returns the number of cached items.
func (c *Cache) Len() int { return c.rig.Engine.Len() }

// Stats snapshots cache and device counters.
func (c *Cache) Stats() Stats {
	st := c.rig.Engine.Stats()
	return Stats{
		Scheme:             c.rig.Scheme,
		Items:              c.rig.Engine.Len(),
		HitRatio:           st.HitRatio,
		Hits:               st.Hits,
		Misses:             st.Misses,
		Sets:               st.Sets,
		Deletes:            st.Deletes,
		Evictions:          st.Evictions,
		AdmitRejects:       st.AdmitRejects,
		WriteAmplification: c.rig.WAFactor(),
		GetP50:             st.GetLatency.P50,
		GetP99:             st.GetLatency.P99,
		SimulatedTime:      st.SimulatedTime,
	}
}

// SimulatedTime returns the virtual clock position.
func (c *Cache) SimulatedTime() time.Duration { return c.rig.Clock.Now() }

// Rig exposes the underlying scheme assembly for advanced inspection
// (device stats, middle-layer counters). The returned value shares state
// with the cache.
func (c *Cache) Rig() *harness.Rig { return c.rig }

// Close marks the cache closed. The simulation holds no external
// resources; Close exists for API symmetry and use-after-close detection.
func (c *Cache) Close() error {
	c.closed = true
	return nil
}
